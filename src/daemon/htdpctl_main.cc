// htdpctl -- control CLI for htdpd.
//
// Subcommands mirror the protocol one to one:
//
//   htdpctl [--host=H] [--port=P] [--json] list-solvers
//   htdpctl ... stats
//   htdpctl ... budget                     # per-tenant ledger + durability
//   htdpctl ... submit --solver=NAME [--tenant=T] [--seed=S] [--n=N] [--d=D]
//                      [--data-seed=S] [--epsilon=E] [--delta=D]
//                      [--iterations=T] [--deadline=SECS] [--tag=TAG]
//                      [--wait] [--stream]
//                      [--retry] [--retry-attempts=K] [--retry-deadline=SECS]
//   htdpctl ... poll --job=ID [--wait]
//   htdpctl ... cancel --job=ID
//   htdpctl ... metrics [--prom]           # observability registry dump
//   htdpctl ... trace [--out=FILE]         # Chrome-trace JSON (Perfetto)
//   htdpctl ... selfcheck [submit flags]   # remote fit == local fit, bit-exact
//
// The demo problem is generated CLIENT-side (Section 6.1 synthetic linear
// data, unit l1-ball constraint) from --n/--d/--data-seed, so a submit is
// fully reproducible from its command line.
//
// Exit codes: 0 success, 1 usage/connection error, 3 selfcheck mismatch,
// 10 + wire_code for a typed remote rejection -- so an over-budget tenant's
// submit exits 12 (BUDGET_EXHAUSTED = 2), a cancelled wait exits 15, and a
// shed submit (queue/connection cap) exits 17 (UNAVAILABLE = 7) unless
// --retry is given, in which case the client backs off per the server's
// retry_after_ms hints and resubmits (safe: fits are deterministic at a
// fixed seed).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/solver_registry.h"
#include "data/synthetic.h"
#include "net/client.h"
#include "net/wire_status.h"
#include "rng/rng.h"

namespace {

using htdp::PrivacyBudget;
using htdp::Rng;
using htdp::Status;
using htdp::StatusOr;
using htdp::Vector;

struct Cli {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7411;
  bool json = false;

  std::string command;
  std::string solver = "alg1_dp_fw";
  std::string tenant;
  std::string tag;
  std::uint64_t seed = 17;
  std::uint64_t data_seed = 4242;
  std::size_t n = 400;
  std::size_t d = 10;
  double epsilon = 1.0;
  double delta = 0.01;
  int iterations = 0;
  double deadline = 0.0;
  bool risk_trace = false;
  bool wait = false;
  bool stream = false;
  std::uint64_t job = 0;
  bool retry = false;
  int retry_attempts = 8;
  double retry_deadline = 0.0;
  bool prom = false;      // metrics: Prometheus text instead of JSON
  std::string out_file;   // trace: write here instead of stdout
};

int Usage() {
  std::fprintf(stderr,
               "usage: htdpctl [--host=H] [--port=P] [--json] COMMAND ...\n"
               "commands: list-solvers | stats | budget | submit |\n"
               "          poll --job=ID | cancel --job=ID | selfcheck |\n"
               "          metrics [--prom] | trace [--out=FILE]\n");
  return 1;
}

bool FlagValue(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

/// Typed remote errors map to stable exit codes scripts can branch on.
int ExitCodeFor(const Status& status) {
  return 10 + static_cast<int>(htdp::net::WireStatusFor(status.code()));
}

int Fail(const Status& status) {
  std::fprintf(stderr, "htdpctl: %s\n", status.message().c_str());
  return ExitCodeFor(status);
}

/// FNV-1a over the iterate's IEEE-754 bytes: a cheap, stable fingerprint two
/// processes can compare to assert bit-identity.
std::uint64_t ChecksumW(const Vector& w) {
  std::uint64_t hash = 1469598103934665603ull;
  for (double value : w) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      hash ^= (bits >> (8 * i)) & 0xffu;
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

/// The reproducible demo workload: Section 6.1 synthetic linear data on the
/// unit l1 ball, derived entirely from the CLI flags.
htdp::net::WireProblem MakeProblem(const Cli& cli) {
  Rng rng(cli.data_seed);
  htdp::SyntheticConfig config;
  config.n = cli.n;
  config.d = cli.d;
  const Vector w_star = htdp::MakeL1BallTarget(cli.d, rng);

  htdp::net::WireProblem problem;
  problem.data = htdp::GenerateLinear(config, w_star, rng);
  problem.loss = htdp::net::kWireLossSquared;
  problem.constraint = htdp::net::WireConstraint::kL1Ball;
  problem.constraint_radius = 1.0;
  return problem;
}

htdp::net::SubmitRequest MakeSubmit(const Cli& cli) {
  htdp::net::SubmitRequest request;
  request.tenant = cli.tenant;
  request.solver = cli.solver;
  request.tag = cli.tag;
  request.seed = cli.seed;
  request.deadline_seconds = cli.deadline;
  request.stream = cli.stream;
  request.spec.budget = PrivacyBudget::Approx(cli.epsilon, cli.delta);
  if (cli.iterations > 0) request.spec.iterations = cli.iterations;
  request.spec.record_risk_trace = cli.risk_trace;
  request.problem = MakeProblem(cli);
  return request;
}

void PrintResult(const Cli& cli, std::uint64_t job,
                 const htdp::FitResult& result) {
  const std::uint64_t checksum = ChecksumW(result.w);
  if (cli.json) {
    std::printf("{\"job\": %" PRIu64 ", \"iterations\": %d, "
                "\"seconds\": %.6f, \"dim\": %zu, "
                "\"checksum\": \"%016" PRIx64 "\", "
                "\"ledger_entries\": %zu}\n",
                job, result.iterations, result.seconds, result.w.size(),
                checksum, result.ledger.entries().size());
    return;
  }
  std::printf("job %" PRIu64 " done: %d iterations in %.3fs, d=%zu, "
              "w checksum %016" PRIx64 ", %zu ledger entries\n",
              job, result.iterations, result.seconds, result.w.size(),
              checksum, result.ledger.entries().size());
}

int RunListSolvers(const Cli& cli, htdp::net::Client& client) {
  StatusOr<htdp::net::SolverListReply> reply = client.ListSolvers();
  if (!reply.ok()) return Fail(reply.status());
  if (cli.json) {
    std::printf("[");
    for (std::size_t i = 0; i < reply.value().solvers.size(); ++i) {
      const auto& row = reply.value().solvers[i];
      std::printf("%s{\"name\": \"%s\", \"description\": \"%s\"}",
                  i == 0 ? "" : ", ", row.name.c_str(),
                  row.description.c_str());
    }
    std::printf("]\n");
    return 0;
  }
  for (const auto& row : reply.value().solvers) {
    std::printf("%-22s %s\n", row.name.c_str(), row.description.c_str());
  }
  return 0;
}

int RunStats(const Cli& cli, htdp::net::Client& client) {
  StatusOr<htdp::net::StatsReply> reply = client.Stats();
  if (!reply.ok()) return Fail(reply.status());
  const htdp::net::StatsReply& stats = reply.value();
  if (cli.json) {
    std::printf("{\"submitted\": %zu, \"completed\": %zu, \"succeeded\": %zu, "
                "\"failed\": %zu, \"cancelled\": %zu, "
                "\"budget_rejected\": %zu, \"queue_depth\": %zu, "
                "\"running\": %zu, \"unavailable_rejected\": %zu, "
                "\"shed_expired\": %zu, \"overloaded\": %s, "
                "\"steals\": %zu, \"steal_failures\": %zu, "
                "\"connections\": %" PRIu64 ", "
                "\"retained_jobs\": %" PRIu64 ", \"draining\": %s, "
                "\"worker_queue_depths\": [",
                stats.engine.submitted, stats.engine.completed,
                stats.engine.succeeded, stats.engine.failed,
                stats.engine.cancelled, stats.engine.budget_rejected,
                stats.engine.queue_depth, stats.engine.running,
                stats.engine.unavailable_rejected, stats.engine.shed_expired,
                stats.engine.overloaded ? "true" : "false",
                stats.engine.steals, stats.engine.steal_failures,
                stats.connections, stats.retained_jobs,
                stats.draining ? "true" : "false");
    for (std::size_t i = 0; i < stats.engine.worker_queue_depths.size(); ++i) {
      std::printf("%s%zu", i == 0 ? "" : ", ",
                  stats.engine.worker_queue_depths[i]);
    }
    std::printf("], \"tenants\": [");
    for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
      const auto& row = stats.tenants[i];
      std::printf("%s{\"name\": \"%s\", \"epsilon_total\": %g, "
                  "\"epsilon_spent\": %g, \"admitted\": %" PRIu64 ", "
                  "\"rejected\": %" PRIu64 "}",
                  i == 0 ? "" : ", ", row.name.c_str(), row.total.epsilon,
                  row.spent.epsilon, row.admitted, row.rejected);
    }
    std::printf("]}\n");
    return 0;
  }
  std::printf("engine: %zu submitted, %zu completed (%zu ok, %zu failed, "
              "%zu cancelled), %zu budget-rejected, %zu queued, %zu running\n",
              stats.engine.submitted, stats.engine.completed,
              stats.engine.succeeded, stats.engine.failed,
              stats.engine.cancelled, stats.engine.budget_rejected,
              stats.engine.queue_depth, stats.engine.running);
  std::printf("overload: %zu shed at submit, %zu expired in queue%s\n",
              stats.engine.unavailable_rejected, stats.engine.shed_expired,
              stats.engine.overloaded ? ", SHEDDING NOW" : "");
  std::printf("scheduler: %zu steals, %zu failed sweeps, per-worker depth [",
              stats.engine.steals, stats.engine.steal_failures);
  for (std::size_t i = 0; i < stats.engine.worker_queue_depths.size(); ++i) {
    std::printf("%s%zu", i == 0 ? "" : " ",
                stats.engine.worker_queue_depths[i]);
  }
  std::printf("]\n");
  std::printf("daemon: %" PRIu64 " connections, %" PRIu64
              " retained jobs%s\n",
              stats.connections, stats.retained_jobs,
              stats.draining ? ", draining" : "");
  for (const auto& row : stats.tenants) {
    std::printf("tenant %-12s eps %.3f/%.3f  admitted %" PRIu64
                "  rejected %" PRIu64 "  refunded %" PRIu64 "\n",
                row.name.c_str(), row.spent.epsilon, row.total.epsilon,
                row.admitted, row.rejected, row.refunded);
  }
  return 0;
}

/// BUDGET: the privacy-budget ledger -- spend per tenant with the
/// reservation lifecycle counters, plus the daemon's durability state
/// (journal/fsync/recovery; all zero when htdpd runs without --state-dir).
int RunBudget(const Cli& cli, htdp::net::Client& client) {
  StatusOr<htdp::net::BudgetReply> reply = client.Budget();
  if (!reply.ok()) return Fail(reply.status());
  const htdp::net::BudgetReply& budget = reply.value();
  if (cli.json) {
    std::printf("{\"durable\": %s, \"state_dir\": \"%s\", "
                "\"fsync\": \"%s\", \"journal_records\": %" PRIu64 ", "
                "\"journal_bytes\": %" PRIu64 ", "
                "\"journal_lag_records\": %" PRIu64 ", "
                "\"snapshots\": %" PRIu64 ", "
                "\"open_reservations\": %" PRIu64 ", "
                "\"recovered_records\": %" PRIu64 ", "
                "\"recovered_reserves\": %" PRIu64 ", "
                "\"torn_bytes_discarded\": %" PRIu64 ", "
                "\"recovery_seconds\": %.6f, \"tenants\": [",
                budget.durable ? "true" : "false", budget.state_dir.c_str(),
                budget.fsync_policy.c_str(), budget.journal_records,
                budget.journal_bytes, budget.journal_lag_records,
                budget.snapshots, budget.open_reservations,
                budget.recovered_records, budget.recovered_reserves,
                budget.torn_bytes_discarded, budget.recovery_seconds);
    for (std::size_t i = 0; i < budget.tenants.size(); ++i) {
      const auto& row = budget.tenants[i];
      std::printf("%s{\"name\": \"%s\", \"epsilon_total\": %.17g, "
                  "\"epsilon_spent\": %.17g, \"epsilon_remaining\": %.17g, "
                  "\"delta_total\": %.17g, \"delta_spent\": %.17g, "
                  "\"delta_remaining\": %.17g, "
                  "\"epsilon_recovered\": %.17g, "
                  "\"admitted\": %" PRIu64 ", \"rejected\": %" PRIu64 ", "
                  "\"refunded\": %" PRIu64 ", \"open\": %" PRIu64 ", "
                  "\"recovered_reserves\": %" PRIu64 "}",
                  i == 0 ? "" : ", ", row.name.c_str(), row.total.epsilon,
                  row.spent.epsilon, row.remaining.epsilon, row.total.delta,
                  row.spent.delta, row.remaining.delta, row.recovered.epsilon,
                  row.admitted, row.rejected, row.refunded, row.open,
                  row.recovered_reserves);
    }
    std::printf("]}\n");
    return 0;
  }
  if (budget.durable) {
    std::printf("ledger: durable at %s (fsync=%s), %" PRIu64
                " journal records (%" PRIu64 " bytes, lag %" PRIu64
                "), %" PRIu64 " snapshots\n",
                budget.state_dir.c_str(), budget.fsync_policy.c_str(),
                budget.journal_records, budget.journal_bytes,
                budget.journal_lag_records, budget.snapshots);
    std::printf("recovery: %" PRIu64 " records replayed in %.3fms, %" PRIu64
                " dangling reserves kept as spend, %" PRIu64
                " torn bytes discarded\n",
                budget.recovered_records, budget.recovery_seconds * 1e3,
                budget.recovered_reserves, budget.torn_bytes_discarded);
  } else {
    std::printf("ledger: in-memory (start htdpd with --state-dir to make it "
                "durable)\n");
  }
  std::printf("open reservations: %" PRIu64 "\n", budget.open_reservations);
  for (const auto& row : budget.tenants) {
    std::printf("tenant %-12s eps %.3f spent / %.3f total (%.3f left)  "
                "admitted %" PRIu64 "  rejected %" PRIu64 "  refunded %" PRIu64
                "  open %" PRIu64,
                row.name.c_str(), row.spent.epsilon, row.total.epsilon,
                row.remaining.epsilon, row.admitted, row.rejected,
                row.refunded, row.open);
    if (row.recovered_reserves > 0) {
      std::printf("  [recovered %" PRIu64 " reserves, eps %.3f]",
                  row.recovered_reserves, row.recovered.epsilon);
    }
    std::printf("\n");
  }
  return 0;
}

int RunSubmit(const Cli& cli, htdp::net::Client& client) {
  if (cli.retry) {
    // Retry implies waiting for the result: only a completed fit proves
    // the resubmission loop converged.
    htdp::net::RetryPolicy policy;
    policy.max_attempts = cli.retry_attempts;
    policy.deadline_seconds = cli.retry_deadline;
    policy.jitter_seed = cli.seed;
    StatusOr<htdp::FitResult> result =
        client.SubmitAndWaitWithRetry(MakeSubmit(cli), policy);
    if (!result.ok()) return Fail(result.status());
    PrintResult(cli, client.last_job_id(), result.value());
    return 0;
  }
  StatusOr<std::uint64_t> job = client.Submit(MakeSubmit(cli));
  if (!job.ok()) return Fail(job.status());
  if (!cli.wait && !cli.stream) {
    if (cli.json) {
      std::printf("{\"job\": %" PRIu64 "}\n", job.value());
    } else {
      std::printf("job %" PRIu64 " submitted\n", job.value());
    }
    return 0;
  }
  StatusOr<htdp::FitResult> result = cli.stream
                                         ? client.AwaitStreamed(job.value())
                                         : client.WaitResult(job.value());
  if (!result.ok()) return Fail(result.status());
  PrintResult(cli, job.value(), result.value());
  return 0;
}

int RunPoll(const Cli& cli, htdp::net::Client& client) {
  if (cli.job == 0) return Usage();
  if (cli.wait) {
    StatusOr<htdp::FitResult> result = client.WaitResult(cli.job);
    if (!result.ok()) return Fail(result.status());
    PrintResult(cli, cli.job, result.value());
    return 0;
  }
  StatusOr<htdp::net::JobStateMsg> state = client.Poll(cli.job, false);
  if (!state.ok()) return Fail(state.status());
  const char* name =
      state.value().state == htdp::net::WireJobState::kInFlight ? "in-flight"
      : state.value().state == htdp::net::WireJobState::kDoneOk ? "done"
                                                                : "error";
  if (cli.json) {
    std::printf("{\"job\": %" PRIu64 ", \"state\": \"%s\", \"code\": %u}\n",
                cli.job, name, state.value().wire_code);
  } else {
    std::printf("job %" PRIu64 ": %s%s%s\n", cli.job, name,
                state.value().message.empty() ? "" : " -- ",
                state.value().message.c_str());
  }
  return 0;
}

int RunCancel(const Cli& cli, htdp::net::Client& client) {
  if (cli.job == 0) return Usage();
  StatusOr<htdp::net::JobStateMsg> state = client.Cancel(cli.job);
  if (!state.ok()) return Fail(state.status());
  std::printf("job %" PRIu64 ": cancel %s\n", cli.job,
              state.value().state == htdp::net::WireJobState::kDoneOk
                  ? "too late (already done)"
                  : "requested");
  return 0;
}

/// METRICS in the registry's JSON or Prometheus text format (--prom). The
/// body is printed verbatim: it IS the exposition document.
int RunMetrics(const Cli& cli, htdp::net::Client& client) {
  const htdp::net::MetricsFormat format =
      cli.prom ? htdp::net::MetricsFormat::kPrometheus
               : htdp::net::MetricsFormat::kJson;
  StatusOr<htdp::net::MetricsReply> reply = client.Metrics(format);
  if (!reply.ok()) return Fail(reply.status());
  std::fputs(reply.value().body.c_str(), stdout);
  if (!reply.value().body.empty() && reply.value().body.back() != '\n') {
    std::fputc('\n', stdout);
  }
  return 0;
}

/// METRICS(trace): pulls the daemon's span rings as Chrome trace-event
/// JSON, written to --out=FILE (default stdout) for chrome://tracing or
/// Perfetto.
int RunTrace(const Cli& cli, htdp::net::Client& client) {
  StatusOr<htdp::net::MetricsReply> reply =
      client.Metrics(htdp::net::MetricsFormat::kTraceChrome);
  if (!reply.ok()) return Fail(reply.status());
  if (cli.out_file.empty()) {
    std::fputs(reply.value().body.c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }
  std::FILE* file = std::fopen(cli.out_file.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "htdpctl: cannot write %s\n", cli.out_file.c_str());
    return 1;
  }
  std::fputs(reply.value().body.c_str(), file);
  std::fclose(file);
  std::fprintf(stderr, "trace written to %s (%zu bytes)\n",
               cli.out_file.c_str(), reply.value().body.size());
  return 0;
}

/// Submits the demo problem AND fits it locally with the same seed, then
/// asserts the two iterates are bit-identical -- the end-to-end proof that
/// the codec, the serializer and the daemon preserve every bit.
int RunSelfcheck(const Cli& cli, htdp::net::Client& client) {
  StatusOr<std::uint64_t> job = client.Submit(MakeSubmit(cli));
  if (!job.ok()) return Fail(job.status());
  StatusOr<htdp::FitResult> remote = client.WaitResult(job.value());
  if (!remote.ok()) return Fail(remote.status());

  htdp::net::SubmitRequest request = MakeSubmit(cli);
  StatusOr<std::unique_ptr<htdp::net::ProblemHolder>> holder =
      htdp::net::ProblemHolder::Materialize(std::move(request.problem));
  if (!holder.ok()) return Fail(holder.status());
  StatusOr<const htdp::Solver*> solver =
      htdp::SolverRegistry::Global().Find(cli.solver);
  if (!solver.ok()) return Fail(solver.status());
  Rng rng(cli.seed);
  StatusOr<htdp::FitResult> local =
      solver.value()->TryFit(holder.value()->problem(), request.spec, rng);
  if (!local.ok()) return Fail(local.status());

  const std::uint64_t remote_sum = ChecksumW(remote.value().w);
  const std::uint64_t local_sum = ChecksumW(local.value().w);
  if (remote.value().w != local.value().w) {
    std::fprintf(stderr,
                 "selfcheck MISMATCH: remote %016" PRIx64 " != local %016"
                 PRIx64 "\n",
                 remote_sum, local_sum);
    return 3;
  }
  if (cli.json) {
    std::printf("{\"selfcheck\": \"ok\", \"checksum\": \"%016" PRIx64 "\"}\n",
                remote_sum);
  } else {
    std::printf("selfcheck ok: remote == local, checksum %016" PRIx64 "\n",
                remote_sum);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (FlagValue(argv[i], "--host", &value)) {
      cli.host = value;
    } else if (FlagValue(argv[i], "--port", &value)) {
      cli.port = static_cast<std::uint16_t>(std::atoi(value.c_str()));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      cli.json = true;
    } else if (FlagValue(argv[i], "--solver", &value)) {
      cli.solver = value;
    } else if (FlagValue(argv[i], "--tenant", &value)) {
      cli.tenant = value;
    } else if (FlagValue(argv[i], "--tag", &value)) {
      cli.tag = value;
    } else if (FlagValue(argv[i], "--seed", &value)) {
      cli.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--data-seed", &value)) {
      cli.data_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (FlagValue(argv[i], "--n", &value)) {
      cli.n = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (FlagValue(argv[i], "--d", &value)) {
      cli.d = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (FlagValue(argv[i], "--epsilon", &value)) {
      cli.epsilon = std::atof(value.c_str());
    } else if (FlagValue(argv[i], "--delta", &value)) {
      cli.delta = std::atof(value.c_str());
    } else if (FlagValue(argv[i], "--iterations", &value)) {
      cli.iterations = std::atoi(value.c_str());
    } else if (FlagValue(argv[i], "--deadline", &value)) {
      cli.deadline = std::atof(value.c_str());
    } else if (FlagValue(argv[i], "--job", &value)) {
      cli.job = std::strtoull(value.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--risk-trace") == 0) {
      cli.risk_trace = true;
    } else if (std::strcmp(argv[i], "--wait") == 0) {
      cli.wait = true;
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      cli.stream = true;
    } else if (std::strcmp(argv[i], "--retry") == 0) {
      cli.retry = true;
    } else if (FlagValue(argv[i], "--retry-attempts", &value)) {
      cli.retry_attempts = std::atoi(value.c_str());
    } else if (FlagValue(argv[i], "--retry-deadline", &value)) {
      cli.retry_deadline = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      cli.prom = true;
    } else if (FlagValue(argv[i], "--out", &value)) {
      cli.out_file = value;
    } else if (argv[i][0] != '-' && cli.command.empty()) {
      cli.command = argv[i];
    } else {
      std::fprintf(stderr, "htdpctl: unknown argument \"%s\"\n", argv[i]);
      return Usage();
    }
  }
  if (cli.command.empty()) return Usage();

  htdp::StatusOr<std::unique_ptr<htdp::net::Client>> client =
      htdp::net::Client::Connect(cli.host, cli.port);
  if (!client.ok()) {
    std::fprintf(stderr, "htdpctl: cannot reach htdpd at %s:%u: %s\n",
                 cli.host.c_str(), static_cast<unsigned>(cli.port),
                 client.status().message().c_str());
    return 1;
  }

  if (cli.command == "list-solvers") return RunListSolvers(cli, *client.value());
  if (cli.command == "stats") return RunStats(cli, *client.value());
  if (cli.command == "budget") return RunBudget(cli, *client.value());
  if (cli.command == "submit") return RunSubmit(cli, *client.value());
  if (cli.command == "poll") return RunPoll(cli, *client.value());
  if (cli.command == "cancel") return RunCancel(cli, *client.value());
  if (cli.command == "selfcheck") return RunSelfcheck(cli, *client.value());
  if (cli.command == "metrics") return RunMetrics(cli, *client.value());
  if (cli.command == "trace") return RunTrace(cli, *client.value());
  std::fprintf(stderr, "htdpctl: unknown command \"%s\"\n",
               cli.command.c_str());
  return Usage();
}
