// htdpd -- the htdp fit daemon.
//
// Binds a TCP socket, prints "htdpd listening on HOST:PORT" (how scripts
// discover a --port=0 ephemeral port), and serves the htdpd protocol
// (docs/protocol.md) until SIGINT/SIGTERM. The first signal drains
// gracefully -- stop accepting, finish in-flight fits, flush result frames,
// exit 0; a second signal hard-exits with status 130 for operators who want
// out NOW.
//
// Usage:
//   htdpd [--host=H] [--port=P] [--workers=N] [--idle-timeout=SECONDS]
//         [--max-frame-mb=M] [--tenant NAME=EPS[,DELTA]]...
//         [--queue-cap=K] [--queue-resume=K] [--max-inflight-per-tenant=K]
//         [--max-connections=K] [--write-buffer-mb=M] [--read-deadline=SECS]
//         [--trace=on|off] [--trace-capacity=SPANS]
//         [--state-dir=DIR] [--fsync=always|batch|off]
//
// --state-dir makes the privacy-budget ledger durable: every reservation,
// commit, and refund is journaled write-ahead under DIR, and a restart on
// the same DIR recovers the exact committed spend (docs/durability.md).
// --fsync trades journal latency against power-loss durability; it only
// matters with --state-dir.
//
// Tracing defaults ON in the daemon (the runtime-enabled record path is a
// bounded per-thread ring, <1% overhead); --trace=off flips the runtime
// toggle, leaving the METRICS request serving empty traces.
//
// Chaos: set HTDP_FAULT_PLAN (e.g. "seed=7,drop=0.03,truncate=0.03") to
// inject deterministic wire faults into every connection's writes.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "daemon/server.h"
#include "obs/trace.h"

namespace {

std::atomic<htdp::daemon::Server*> g_server{nullptr};

void HandleSignal(int) {
  htdp::daemon::Server* server = g_server.load(std::memory_order_acquire);
  if (server == nullptr) std::_Exit(130);
  if (server->OnSignal() == htdp::daemon::SignalAction::kHardExit) {
    // Only async-signal-safe calls on this path.
    std::_Exit(130);
  }
}

bool FlagValue(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: htdpd [--host=H] [--port=P] [--workers=N]\n"
      "             [--idle-timeout=SECONDS] [--max-frame-mb=M]\n"
      "             [--tenant NAME=EPS[,DELTA]]...\n"
      "             [--queue-cap=K] [--queue-resume=K]\n"
      "             [--max-inflight-per-tenant=K] [--max-connections=K]\n"
      "             [--write-buffer-mb=M] [--read-deadline=SECONDS]\n"
      "             [--trace=on|off] [--trace-capacity=SPANS]\n"
      "             [--state-dir=DIR] [--fsync=always|batch|off]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  htdp::daemon::ServerOptions options;
  bool trace = true;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (FlagValue(argv[i], "--host", &value)) {
      options.host = value;
    } else if (FlagValue(argv[i], "--port", &value)) {
      options.port = static_cast<std::uint16_t>(std::atoi(value.c_str()));
    } else if (FlagValue(argv[i], "--workers", &value)) {
      options.engine_workers = std::atoi(value.c_str());
    } else if (FlagValue(argv[i], "--idle-timeout", &value)) {
      options.idle_timeout_seconds = std::atof(value.c_str());
    } else if (FlagValue(argv[i], "--max-frame-mb", &value)) {
      options.max_payload_bytes =
          static_cast<std::size_t>(std::atoi(value.c_str())) << 20;
    } else if (FlagValue(argv[i], "--queue-cap", &value)) {
      options.max_queue_depth =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (FlagValue(argv[i], "--queue-resume", &value)) {
      options.queue_resume_depth =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (FlagValue(argv[i], "--max-inflight-per-tenant", &value)) {
      options.max_inflight_per_tenant =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (FlagValue(argv[i], "--max-connections", &value)) {
      options.max_connections =
          static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (FlagValue(argv[i], "--write-buffer-mb", &value)) {
      options.max_write_buffer_bytes =
          static_cast<std::size_t>(std::atoi(value.c_str())) << 20;
    } else if (FlagValue(argv[i], "--read-deadline", &value)) {
      options.read_deadline_seconds = std::atof(value.c_str());
    } else if (FlagValue(argv[i], "--state-dir", &value)) {
      options.state_dir = value;
    } else if (FlagValue(argv[i], "--fsync", &value)) {
      htdp::StatusOr<htdp::dp::FsyncPolicy> policy =
          htdp::dp::ParseFsyncPolicy(value);
      if (!policy.ok()) {
        std::fprintf(stderr, "htdpd: %s\n", policy.status().message().c_str());
        return 1;
      }
      options.fsync = policy.value();
    } else if (FlagValue(argv[i], "--trace", &value)) {
      if (value == "on") {
        trace = true;
      } else if (value == "off") {
        trace = false;
      } else {
        std::fprintf(stderr, "htdpd: --trace wants on|off, got \"%s\"\n",
                     value.c_str());
        return 1;
      }
    } else if (FlagValue(argv[i], "--trace-capacity", &value)) {
      htdp::obs::SetTraceCapacity(
          static_cast<std::size_t>(std::atoll(value.c_str())));
    } else if (FlagValue(argv[i], "--tenant", &value) ||
               (std::strcmp(argv[i], "--tenant") == 0 && i + 1 < argc &&
                (value = argv[++i], true))) {
      htdp::StatusOr<htdp::daemon::TenantConfig> tenant =
          htdp::daemon::ParseTenantFlag(value);
      if (!tenant.ok()) {
        std::fprintf(stderr, "htdpd: %s\n",
                     tenant.status().message().c_str());
        return 1;
      }
      options.tenants.push_back(std::move(tenant).value());
    } else {
      std::fprintf(stderr, "htdpd: unknown argument \"%s\"\n", argv[i]);
      return Usage();
    }
  }

  htdp::StatusOr<std::optional<htdp::net::FaultPlan>> fault =
      htdp::net::FaultPlan::FromEnv();
  if (!fault.ok()) {
    std::fprintf(stderr, "htdpd: HTDP_FAULT_PLAN: %s\n",
                 fault.status().message().c_str());
    return 1;
  }
  options.fault = fault.value();
  if (options.fault.has_value()) {
    std::fprintf(stderr, "htdpd: CHAOS MODE -- injecting wire faults (%s)\n",
                 options.fault->ToSpec().c_str());
  }

  htdp::obs::SetTraceEnabled(trace);

  const std::string host =
      options.host.empty() || options.host == "localhost" ? "127.0.0.1"
                                                          : options.host;
  htdp::StatusOr<std::unique_ptr<htdp::daemon::Server>> server =
      htdp::daemon::Server::Create(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "htdpd: %s\n", server.status().message().c_str());
    return 1;
  }
  g_server.store(server.value().get(), std::memory_order_release);

  struct sigaction action{};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  std::printf("htdpd listening on %s:%u\n", host.c_str(),
              static_cast<unsigned>(server.value()->port()));
  std::fflush(stdout);

  htdp::Status run = server.value()->Run();
  g_server.store(nullptr, std::memory_order_release);
  if (!run.ok()) {
    std::fprintf(stderr, "htdpd: %s\n", run.message().c_str());
    return 1;
  }
  return 0;
}
