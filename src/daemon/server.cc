#include "daemon/server.h"

#include <algorithm>
#include <utility>

#include "api/solver_registry.h"
#include "net/wire_status.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace htdp {
namespace daemon {

StatusOr<TenantConfig> ParseTenantFlag(const std::string& value) {
  const std::size_t eq = value.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidProblem(
        "--tenant wants NAME=EPSILON or NAME=EPSILON,DELTA, got \"" + value +
        "\"");
  }
  TenantConfig config;
  config.name = value.substr(0, eq);
  std::string budget = value.substr(eq + 1);
  const std::size_t comma = budget.find(',');
  try {
    if (comma == std::string::npos) {
      config.budget = PrivacyBudget::Pure(std::stod(budget));
    } else {
      config.budget = PrivacyBudget::Approx(std::stod(budget.substr(0, comma)),
                                            std::stod(budget.substr(comma + 1)));
    }
  } catch (const std::exception&) {
    return Status::InvalidProblem("unparseable budget in --tenant \"" + value +
                                  "\"");
  }
  return config;
}

Server::Server(ServerOptions options) : options_(std::move(options)) {}

StatusOr<std::unique_ptr<Server>> Server::Create(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(std::move(options)));

  // The ledger store opens (and recovers) BEFORE tenants register, so the
  // manager adopts any crash-recovered spend and registration re-funds
  // recovered tenants instead of colliding with them.
  if (!server->options_.state_dir.empty()) {
    dp::BudgetStore::Options store_options;
    store_options.dir = server->options_.state_dir;
    store_options.fsync = server->options_.fsync;
    StatusOr<std::unique_ptr<dp::BudgetStore>> store =
        dp::BudgetStore::Open(std::move(store_options));
    HTDP_RETURN_IF_ERROR(store.status());
    server->store_ = std::move(store).value();
    HTDP_RETURN_IF_ERROR(server->budgets_.AttachStore(server->store_.get()));
  }

  for (const TenantConfig& tenant : server->options_.tenants) {
    HTDP_RETURN_IF_ERROR(
        server->budgets_.RegisterTenant(tenant.name, tenant.budget));
  }

  StatusOr<net::UniqueFd> listener =
      net::ListenTcp(server->options_.host, server->options_.port);
  HTDP_RETURN_IF_ERROR(listener.status());
  server->listener_ = std::move(listener).value();
  StatusOr<std::uint16_t> port = net::LocalPort(server->listener_.get());
  HTDP_RETURN_IF_ERROR(port.status());
  server->port_ = port.value();

  Engine::Options engine_options;
  engine_options.workers = server->options_.engine_workers;
  engine_options.budgets = &server->budgets_;
  engine_options.max_queue_depth = server->options_.max_queue_depth;
  engine_options.queue_resume_depth = server->options_.queue_resume_depth;
  engine_options.max_inflight_per_tenant =
      server->options_.max_inflight_per_tenant;
  server->engine_ = std::make_unique<Engine>(engine_options);

  Server* raw = server.get();
  net::EventLoop::Callbacks callbacks;
  callbacks.on_accept = [raw](int fd) { raw->OnAccept(fd); };
  callbacks.on_data = [raw](int fd, const std::uint8_t* data, std::size_t n) {
    raw->OnData(fd, data, n);
  };
  callbacks.on_close = [raw](int fd, const Status& reason) {
    raw->OnConnClosed(fd, reason);
  };
  callbacks.on_wake = [raw] { raw->OnWake(); };
  net::EventLoop::Options loop_options;
  loop_options.idle_timeout_seconds = server->options_.idle_timeout_seconds;
  loop_options.max_write_buffer_bytes =
      server->options_.max_write_buffer_bytes > 0
          ? server->options_.max_write_buffer_bytes
          : 2 * server->options_.max_payload_bytes;
  loop_options.fault = server->options_.fault;
  server->loop_ = std::make_unique<net::EventLoop>(std::move(callbacks),
                                                   std::move(loop_options));
  HTDP_RETURN_IF_ERROR(server->loop_->Init());
  return server;
}

Server::~Server() {
  // The loop has exited by now; waiter threads were joined in FinishJob,
  // except for jobs that never completed processing (hard teardown paths).
  for (auto& [id, job] : jobs_) {
    if (job.waiter.joinable()) {
      job.handle.Cancel();
      job.waiter.join();
    }
  }
}

Status Server::Run() {
  loop_->SetListener(std::move(listener_));
  return loop_->Run();
}

SignalAction Server::OnSignal() {
  // Async-signal-safe by construction: an atomic increment plus one
  // write(2) on the wake pipe. No locks, no allocation, no streams.
  const int count = signal_count_.fetch_add(1, std::memory_order_relaxed);
  if (count == 0) {
    drain_requested_.store(true, std::memory_order_release);
    loop_->Wake();
    return SignalAction::kDrain;
  }
  return SignalAction::kHardExit;
}

void Server::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  loop_->Wake();
}

// ---------------------------------------------------------------------------
// Loop-thread handlers

void Server::OnAccept(int fd) {
  if (options_.max_connections > 0 &&
      conns_.size() >= options_.max_connections) {
    const Status status = Status::Unavailable(
        "connection cap reached (" + std::to_string(options_.max_connections) +
        " open connections)");
    SendError(fd, status, 0);
    loop_->CloseAfterFlush(fd, status);
    return;
  }
  conns_.emplace(fd, Connection(options_.max_payload_bytes));
}

void Server::OnData(int fd, const std::uint8_t* data, std::size_t n) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  it->second.decoder.Feed(data, n);
  while (true) {
    std::optional<net::Frame> frame;
    Status status;
    {
      HTDP_TRACE_SPAN("daemon.frame_decode");
      status = it->second.decoder.Next(&frame);
    }
    if (!status.ok()) {
      // Header corruption: a length-prefixed stream cannot re-synchronize,
      // so explain and hang up (best effort -- the peer may be gone).
      SendError(fd, status, 0);
      loop_->CloseAfterFlush(fd, status);
      return;
    }
    if (!frame.has_value()) break;
    HandleFrame(fd, *frame);
    // The handler may have closed the connection (protocol error path).
    it = conns_.find(fd);
    if (it == conns_.end()) return;
  }
  // A partial frame left buffered means the peer owes us bytes: arm the
  // read deadline so a mid-frame stall (half-open peer) is reaped even
  // though the connection looks recently-active to the idle sweep. A
  // clean frame boundary disarms it.
  loop_->SetReadDeadline(fd, it->second.decoder.buffered_bytes() > 0
                                 ? options_.read_deadline_seconds
                                 : 0.0);
}

void Server::OnConnClosed(int fd, const Status& reason) {
  (void)reason;
  conns_.erase(fd);
  for (auto& [id, job] : jobs_) {
    if (job.origin_fd == fd) job.origin_fd = -1;
    job.parked.erase(std::remove(job.parked.begin(), job.parked.end(), fd),
                     job.parked.end());
  }
  if (draining_) MaybeFinishDrain();
}

void Server::OnWake() {
  if (drain_requested_.exchange(false, std::memory_order_acq_rel)) {
    BeginDrain();
  }
  std::vector<std::uint64_t> done;
  {
    std::lock_guard<std::mutex> lock(completed_mu_);
    done.swap(completed_);
  }
  for (std::uint64_t id : done) FinishJob(id);
  if (draining_) MaybeFinishDrain();
}

void Server::HandleFrame(int fd, const net::Frame& frame) {
  HTDP_TRACE_SPAN("daemon.dispatch");
  obs::MetricRegistry::Global()
      .GetCounter("htdp_daemon_frames_received_total",
                  "Request frames received, by frame type",
                  {{"type", net::FrameTypeName(frame.type)}})
      ->Increment();
  switch (frame.type) {
    case net::FrameType::kSubmit:
      HandleSubmit(fd, frame);
      return;
    case net::FrameType::kPoll:
      HandlePoll(fd, frame);
      return;
    case net::FrameType::kCancel:
      HandleCancel(fd, frame);
      return;
    case net::FrameType::kStats:
      HandleStats(fd);
      return;
    case net::FrameType::kListSolvers:
      HandleListSolvers(fd);
      return;
    case net::FrameType::kMetrics:
      HandleMetrics(fd, frame);
      return;
    case net::FrameType::kBudget:
      HandleBudget(fd);
      return;
    default: {
      // A known frame type that only ever flows server -> client.
      Status status = Status::InvalidProblem(
          std::string("frame type ") + net::FrameTypeName(frame.type) +
          " is not a request");
      SendError(fd, status, 0);
      loop_->CloseAfterFlush(fd, status);
      return;
    }
  }
}

void Server::HandleSubmit(int fd, const net::Frame& frame) {
  net::WireReader reader(frame.payload);
  net::SubmitRequest request;
  Status decoded = DecodeSubmit(reader, &request);
  if (!decoded.ok()) {
    SendError(fd, decoded, 0);
    return;
  }
  if (draining_) {
    SendError(fd, Status::Cancelled("htdpd is draining; not accepting jobs"),
              0);
    return;
  }

  StatusOr<std::unique_ptr<net::ProblemHolder>> holder =
      net::ProblemHolder::Materialize(std::move(request.problem));
  if (!holder.ok()) {
    SendError(fd, holder.status(), 0);
    return;
  }

  FitJob fit;
  fit.solver_name = request.solver;
  fit.problem = holder.value()->problem();
  fit.spec = request.spec;
  fit.seed = request.seed;
  fit.deadline_seconds = request.deadline_seconds;
  fit.tag = request.tag;
  fit.tenant = request.tenant;
  JobHandle handle = engine_->Submit(std::move(fit));

  if (handle.done() && !handle.Wait().ok()) {
    // Inline rejection -- unknown solver, malformed spec, or the acceptance
    // contract's headline case: an over-budget tenant, refused at the
    // socket with the BUDGET_EXHAUSTED wire code before any worker or any
    // data was touched.
    SendError(fd, handle.Wait().status(), 0);
    return;
  }

  const std::uint64_t id = next_job_id_++;
  Job& job = jobs_[id];
  job.handle = handle;
  job.holder = std::move(holder).value();
  job.origin_fd = fd;
  job.stream = request.stream;
  ++inflight_;
  if (job.stream) loop_->MarkBusy(fd, true);

  net::WireWriter writer;
  EncodeSubmitOk(writer, net::SubmitOk{id});
  SendFrame(fd, net::FrameType::kSubmitOk, writer);

  net::EventLoop* loop = loop_.get();
  std::mutex* mu = &completed_mu_;
  std::vector<std::uint64_t>* completed = &completed_;
  job.waiter = std::thread([handle, id, loop, mu, completed] {
    handle.Wait();
    {
      std::lock_guard<std::mutex> lock(*mu);
      completed->push_back(id);
    }
    loop->Wake();
  });
}

void Server::HandlePoll(int fd, const net::Frame& frame) {
  net::WireReader reader(frame.payload);
  net::PollRequest request;
  Status decoded = DecodePoll(reader, &request);
  if (!decoded.ok()) {
    SendError(fd, decoded, 0);
    return;
  }
  auto it = jobs_.find(request.job_id);
  if (it == jobs_.end()) {
    SendError(fd,
              Status::InvalidProblem("unknown job id " +
                                     std::to_string(request.job_id) +
                                     " (evicted or never submitted)"),
              request.job_id);
    return;
  }
  Job& job = it->second;
  if (!job.completed) {
    if (request.deliver) {
      // Parked: the reply is sent by FinishJob, so waiting clients block on
      // the socket instead of spinning poll frames.
      job.parked.push_back(fd);
      loop_->MarkBusy(fd, true);
      return;
    }
    net::WireWriter writer;
    EncodeJobState(writer, net::JobStateMsg{request.job_id,
                                            net::WireJobState::kInFlight, 0,
                                            std::string()});
    SendFrame(fd, net::FrameType::kJobState, writer);
    return;
  }
  SendJobState(fd, request.job_id, job);
  if (request.deliver && job.handle.Wait().ok()) {
    SendResultFrames(fd, request.job_id, job);
  }
}

void Server::HandleCancel(int fd, const net::Frame& frame) {
  net::WireReader reader(frame.payload);
  net::CancelRequest request;
  Status decoded = DecodeCancel(reader, &request);
  if (!decoded.ok()) {
    SendError(fd, decoded, 0);
    return;
  }
  auto it = jobs_.find(request.job_id);
  if (it == jobs_.end()) {
    SendError(fd,
              Status::InvalidProblem("unknown job id " +
                                     std::to_string(request.job_id)),
              request.job_id);
    return;
  }
  Job& job = it->second;
  job.handle.Cancel();
  if (job.completed) {
    SendJobState(fd, request.job_id, job);
    return;
  }
  // Queued jobs are already complete at this point but their completion
  // frame processing is still queued behind the wake; report in-flight and
  // let the caller poll for the terminal state.
  net::WireWriter writer;
  EncodeJobState(writer,
                 net::JobStateMsg{request.job_id, net::WireJobState::kInFlight,
                                  0, "cancel requested"});
  SendFrame(fd, net::FrameType::kJobState, writer);
}

void Server::HandleStats(int fd) {
  net::StatsReply reply;
  reply.engine = engine_->stats();
  for (const TenantConfig& tenant : options_.tenants) {
    StatusOr<BudgetManager::TenantStats> stats = budgets_.Stats(tenant.name);
    if (!stats.ok()) continue;
    net::StatsReply::TenantRow row;
    row.name = tenant.name;
    row.total = stats.value().total;
    row.spent = stats.value().spent;
    row.admitted = stats.value().admitted;
    row.rejected = stats.value().rejected;
    row.refunded = stats.value().refunded;
    reply.tenants.push_back(std::move(row));
  }
  reply.connections = loop_->connection_count();
  reply.retained_jobs = retained_order_.size();
  reply.draining = draining_;

  net::WireWriter writer;
  EncodeStats(writer, reply);
  SendFrame(fd, net::FrameType::kStatsOk, writer);
}

void Server::HandleListSolvers(int fd) {
  net::SolverListReply reply;
  const SolverRegistry& registry = SolverRegistry::Global();
  for (const std::string& name : registry.Names()) {
    StatusOr<const Solver*> solver = registry.Find(name);
    if (!solver.ok()) continue;
    reply.solvers.push_back({name, solver.value()->description()});
  }
  net::WireWriter writer;
  EncodeSolverList(writer, reply);
  SendFrame(fd, net::FrameType::kSolverList, writer);
}

void Server::HandleMetrics(int fd, const net::Frame& frame) {
  net::WireReader reader(frame.payload);
  net::MetricsRequest request;
  Status decoded = DecodeMetrics(reader, &request);
  if (!decoded.ok()) {
    SendError(fd, decoded, 0);
    return;
  }
  net::MetricsReply reply;
  reply.format = request.format;
  switch (request.format) {
    case net::MetricsFormat::kJson:
      reply.body = obs::MetricRegistry::Global().ToJson();
      break;
    case net::MetricsFormat::kPrometheus:
      reply.body = obs::MetricRegistry::Global().ToPrometheus();
      break;
    case net::MetricsFormat::kTraceChrome:
      // Snapshot, not drain: repeated trace pulls each see the current ring
      // window, and a pull never perturbs concurrent recording.
      reply.body = obs::DumpChromeTrace();
      break;
  }
  net::WireWriter writer;
  EncodeMetricsReply(writer, reply);
  SendFrame(fd, net::FrameType::kMetricsOk, writer);
}

void Server::HandleBudget(int fd) {
  net::BudgetReply reply;
  // TenantNames() (not options_.tenants) so tenants known only from
  // recovery -- spend journaled by a previous life of the daemon under a
  // tenant this invocation was not configured with -- still show up.
  for (const std::string& name : budgets_.TenantNames()) {
    StatusOr<BudgetManager::TenantStats> stats = budgets_.Stats(name);
    if (!stats.ok()) continue;
    net::BudgetReply::TenantRow row;
    row.name = name;
    row.total = stats.value().total;
    row.spent = stats.value().spent;
    StatusOr<PrivacyBudget> remaining = budgets_.Remaining(name);
    if (remaining.ok()) row.remaining = remaining.value();
    row.recovered = stats.value().recovered;
    row.admitted = stats.value().admitted;
    row.rejected = stats.value().rejected;
    row.refunded = stats.value().refunded;
    row.open = stats.value().open;
    row.recovered_reserves = stats.value().recovered_reserves;
    reply.tenants.push_back(std::move(row));
  }
  reply.open_reservations = budgets_.OpenReservations();
  if (store_ != nullptr) {
    reply.durable = true;
    reply.state_dir = store_->dir();
    reply.fsync_policy = dp::FsyncPolicyName(store_->fsync_policy());
    reply.journal_records = store_->journal_records();
    reply.journal_bytes = store_->journal_bytes();
    reply.journal_lag_records = store_->lag_records();
    reply.snapshots = store_->snapshots_written();
    const dp::RecoveredLedger& recovered = store_->recovered();
    reply.recovered_records = recovered.journal_records;
    reply.recovered_reserves = recovered.dangling_reserves;
    reply.torn_bytes_discarded = recovered.torn_bytes_discarded;
    reply.recovery_seconds = recovered.recovery_seconds;
  }
  net::WireWriter writer;
  EncodeBudgetReply(writer, reply);
  SendFrame(fd, net::FrameType::kBudgetOk, writer);
}

// ---------------------------------------------------------------------------
// Completion and shutdown

void Server::FinishJob(std::uint64_t id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  if (job.completed) return;
  job.completed = true;
  --inflight_;
  if (job.waiter.joinable()) job.waiter.join();

  if (job.stream && job.origin_fd >= 0) {
    SendJobState(job.origin_fd, id, job);
    if (job.handle.Wait().ok()) SendResultFrames(job.origin_fd, id, job);
    loop_->MarkBusy(job.origin_fd, false);
  }
  // Iterate a detached copy: sending can trip the slow-client guard whose
  // deferred close mutates jobs_ bookkeeping via on_close at the iteration
  // boundary; detaching keeps this loop's footing either way.
  std::vector<int> parked;
  parked.swap(job.parked);
  for (int fd : parked) {
    SendJobState(fd, id, job);
    if (job.handle.Wait().ok()) SendResultFrames(fd, id, job);
    loop_->MarkBusy(fd, false);
  }

  // The dataset is no longer needed -- only the (small) result is retained
  // for late polls.
  job.holder.reset();
  retained_order_.push_back(id);
  while (retained_order_.size() > options_.max_retained_jobs) {
    jobs_.erase(retained_order_.front());
    retained_order_.pop_front();
  }
}

void Server::SendFrame(int fd, net::FrameType type,
                       const net::WireWriter& writer) {
  HTDP_TRACE_SPAN("daemon.write");
  std::vector<std::uint8_t> frame =
      net::EncodeFrame(type, writer.bytes(), options_.max_payload_bytes);
  loop_->Send(fd, frame.data(), frame.size());
}

void Server::SendError(int fd, const Status& status, std::uint64_t job_id) {
  net::WireError error;
  error.wire_code = net::WireStatusFor(status.code());
  error.job_id = job_id;
  error.message = std::string(status.message());
  if (status.code() == StatusCode::kUnavailable) {
    // Stamp the backoff hint so shed clients spread their retries instead
    // of hammering the daemon in lockstep.
    error.retry_after_ms = engine_->SuggestedRetryAfterMs();
  }
  net::WireWriter writer;
  EncodeError(writer, error);
  SendFrame(fd, net::FrameType::kError, writer);
}

void Server::SendJobState(int fd, std::uint64_t id, const Job& job) {
  const StatusOr<FitResult>& outcome = job.handle.Wait();  // completed
  net::JobStateMsg msg;
  msg.job_id = id;
  if (outcome.ok()) {
    msg.state = net::WireJobState::kDoneOk;
  } else {
    msg.state = net::WireJobState::kDoneError;
    msg.wire_code = net::WireStatusFor(outcome.status().code());
    msg.message = std::string(outcome.status().message());
  }
  net::WireWriter writer;
  EncodeJobState(writer, msg);
  SendFrame(fd, net::FrameType::kJobState, writer);
}

void Server::SendResultFrames(int fd, std::uint64_t id, const Job& job) {
  net::WireWriter body;
  EncodeFitResult(body, job.handle.Wait().value());
  const std::vector<std::uint8_t>& bytes = body.bytes();
  std::size_t offset = 0;
  do {
    const std::size_t take =
        std::min(net::kResultChunkBytes, bytes.size() - offset);
    net::ResultChunk chunk;
    chunk.job_id = id;
    chunk.bytes.assign(bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                       bytes.begin() +
                           static_cast<std::ptrdiff_t>(offset + take));
    net::WireWriter writer;
    EncodeResultChunk(writer, chunk);
    SendFrame(fd, net::FrameType::kResultChunk, writer);
    offset += take;
  } while (offset < bytes.size());

  net::WireWriter end;
  EncodeResultEnd(end, net::ResultEnd{id, bytes.size()});
  SendFrame(fd, net::FrameType::kResultEnd, end);
}

void Server::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  loop_->StopAccepting();
  MaybeFinishDrain();
}

void Server::MaybeFinishDrain() {
  if (inflight_ > 0) return;  // completions re-enter via OnWake
  // Every job is done; Drain() returns immediately and certifies it.
  engine_->Drain();
  if (loop_->connection_count() == 0) {
    loop_->Stop();
    return;
  }
  // Flush whatever is still buffered (e.g. final result frames), then close
  // each connection; the last on_close lands back here and stops the loop.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (int fd : fds) {
    loop_->CloseAfterFlush(fd, Status::Cancelled("htdpd shut down"));
  }
}

}  // namespace daemon
}  // namespace htdp
