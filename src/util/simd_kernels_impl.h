#ifndef HTDP_UTIL_SIMD_KERNELS_IMPL_H_
#define HTDP_UTIL_SIMD_KERNELS_IMPL_H_

// The per-ISA batch kernels behind util/simd_dispatch.h, included ONLY by
// the kernel translation units (util/simd_kernels_{base,avx2,avx512}.cc) so
// each compiles this one source at its own ISA. Everything here lives in
// the ISA-keyed inline namespace (distinct symbols per TU; see the ODR note
// in util/simd.h), and the only functions reached outside it are either
// extern libm calls or the baseline-compiled scalar spill
// (simd_dispatch_internal::SmoothedPhiScalarSpill) -- this TU must never
// instantiate scalar inline code that other TUs also emit.
//
// The kernel bodies are the PR-5 vector paths of robust/catoni.cc and
// linalg/vector_ops.cc, moved here verbatim so dispatch changes WHICH ISA
// runs them, not WHAT they compute: at equal lane count the results are
// bit-identical to the pre-dispatch kernels.

#include <cmath>
#include <cstddef>

#include "robust/catoni_constants.h"
#include "util/simd.h"
#include "util/simd_dispatch.h"
#include "util/simd_math.h"

#if !HTDP_SIMD_COMPILED
#error "simd_kernels_impl.h requires the vector layer (HTDP_SIMD_COMPILED)"
#endif

namespace htdp {
namespace simd_kernel_impl {
inline namespace HTDP_SIMD_ISA_NS {

using simd::VecD;
using simd::VecI;

constexpr std::size_t kW = static_cast<std::size_t>(simd::kLanes);

/// Vectorized SmoothedPhiClosedForm: the scalar T1..T5 operation sequence of
/// CatoniCorrection evaluated in lanes, with ExpPd / HalfErfcFromExp in
/// place of libm's exp / erfc and the literal divisions by 6 strength-
/// reduced to a multiply (both are within the SmoothedPhiBatchTolerance
/// contract). Only valid where ClosedFormApplies; the caller masks.
inline VecD ClosedFormLanes(VecD a, VecD b) {
  using catoni_internal::kInvSqrt2Pi;
  using catoni_internal::kPhiBound;
  using catoni_internal::kSqrt2;
  const VecD sixth = simd::Set1(1.0 / 6.0);
  const VecD half = simd::Set1(0.5);
  const VecD inv_sqrt2pi = simd::Set1(kInvSqrt2Pi);
  const VecD phi_bound = simd::Set1(kPhiBound);

  const VecD v_minus = (simd::Set1(kSqrt2) - a) / b;
  const VecD v_plus = (simd::Set1(kSqrt2) + a) / b;
  const VecD e_minus = simd::ExpPd(-(half * v_minus * v_minus));
  const VecD e_plus = simd::ExpPd(-(half * v_plus * v_plus));
  const VecD f_minus = simd::HalfErfcFromExp(v_minus, e_minus);
  const VecD f_plus = simd::HalfErfcFromExp(v_plus, e_plus);

  const VecD a_cubed_sixth = a * a * a * sixth;
  const VecD t1 = phi_bound * (f_minus - f_plus);
  const VecD t2 = -((a - a_cubed_sixth) * (f_minus + f_plus));
  const VecD t3 =
      b * inv_sqrt2pi * (simd::Set1(1.0) - half * a * a) * (e_plus - e_minus);
  const VecD t4 = half * a * b * b *
                  (f_plus + f_minus +
                   inv_sqrt2pi * (v_plus * e_plus + v_minus * e_minus));
  const VecD t5 = (b * b * b * sixth) * inv_sqrt2pi *
                  ((simd::Set1(2.0) + v_minus * v_minus) * e_minus -
                   (simd::Set1(2.0) + v_plus * v_plus) * e_plus);
  const VecD correction = t1 + t2 + t3 + t4 + t5;
  const VecD value =
      a * (simd::Set1(1.0) - half * b * b) - a_cubed_sixth + correction;
  return simd::Clamp(value, -phi_bound, phi_bound);
}

void SmoothedPhiBatchKernel(const double* a, const double* b, double* out,
                            std::size_t n) {
  using catoni_internal::kCancellationLimit;
  using catoni_internal::kTinyB;
  std::size_t j = 0;
  for (; j + kW <= n; j += kW) {
    const VecD va = simd::LoadU(a + j);
    const VecD vb = simd::LoadU(b + j);
    // Branch classification with exactly the scalar ClosedFormApplies
    // arithmetic (including the division by 6), so vector and scalar can
    // never pick different branches for the same element.
    const VecD abs_a = simd::Abs(va);
    const VecD cancellation =
        simd::Max(abs_a * abs_a * abs_a / simd::Set1(6.0),
                  simd::Set1(0.5) * abs_a * vb * vb);
    const VecI hot = (vb >= simd::Set1(kTinyB)) &
                     (cancellation <= simd::Set1(kCancellationLimit));
    if (simd::AllTrue(hot)) [[likely]] {
      simd::StoreU(out + j, ClosedFormLanes(va, vb));
    } else {
      // A cold element (tiny-b or exact-split) diverts its whole group to
      // the scalar reference; outliers are rare enough that this costs
      // nothing measurable. The spill is baseline-compiled (see above).
      simd_dispatch_internal::SmoothedPhiScalarSpill(a + j, b + j, out + j,
                                                     kW);
    }
  }
  if (j < n) {
    simd_dispatch_internal::SmoothedPhiScalarSpill(a + j, b + j, out + j,
                                                   n - j);
  }
}

void SmoothedPhiTransformKernel(const double* xs, std::size_t n, double scale,
                                double sqrt_beta, double* phi) {
  // One stack block of the robust-mean kernels (kSimdBlock in
  // robust/robust_mean.cc); the table contract caps n at 256.
  constexpr std::size_t kBlock = 256;
  double a_buf[kBlock];
  double b_buf[kBlock];
  if (n > kBlock) n = kBlock;
  const VecD v_scale = simd::Set1(scale);
  const VecD v_sqrt_beta = simd::Set1(sqrt_beta);
  std::size_t j = 0;
  // Elementwise derivation (division, abs, division): bit-identical to the
  // scalar `a = x/scale; b = |a|/sqrt_beta` at any lane width.
  for (; j + kW <= n; j += kW) {
    const VecD a = simd::LoadU(xs + j) / v_scale;
    simd::StoreU(a_buf + j, a);
    simd::StoreU(b_buf + j, simd::Abs(a) / v_sqrt_beta);
  }
  for (; j < n; ++j) {
    const double a = xs[j] / scale;
    a_buf[j] = a;
    b_buf[j] = __builtin_fabs(a) / sqrt_beta;
  }
  SmoothedPhiBatchKernel(a_buf, b_buf, phi, n);
}

// Lane-widened reductions: two accumulator vectors to break the add
// dependency chain, lanes summed in index order at the end. Reassociates
// the sum, so results differ from the scalar reference by rounding --
// pinned by the relative-error tests in tests/simd_test.cc.

double DotKernel(const double* a, const double* b, std::size_t n) {
  VecD acc0 = simd::Set1(0.0);
  VecD acc1 = simd::Set1(0.0);
  std::size_t i = 0;
  for (; i + 2 * kW <= n; i += 2 * kW) {
    acc0 = acc0 + simd::LoadU(a + i) * simd::LoadU(b + i);
    acc1 = acc1 + simd::LoadU(a + i + kW) * simd::LoadU(b + i + kW);
  }
  if (i + kW <= n) {
    acc0 = acc0 + simd::LoadU(a + i) * simd::LoadU(b + i);
    i += kW;
  }
  double acc = simd::ReduceAdd(acc0 + acc1);
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double DistanceL2Kernel(const double* a, const double* b, std::size_t n) {
  VecD acc0 = simd::Set1(0.0);
  VecD acc1 = simd::Set1(0.0);
  std::size_t i = 0;
  for (; i + 2 * kW <= n; i += 2 * kW) {
    const VecD d0 = simd::LoadU(a + i) - simd::LoadU(b + i);
    const VecD d1 = simd::LoadU(a + i + kW) - simd::LoadU(b + i + kW);
    acc0 = acc0 + d0 * d0;
    acc1 = acc1 + d1 * d1;
  }
  if (i + kW <= n) {
    const VecD d0 = simd::LoadU(a + i) - simd::LoadU(b + i);
    acc0 = acc0 + d0 * d0;
    i += kW;
  }
  double acc = simd::ReduceAdd(acc0 + acc1);
  for (; i < n; ++i) {
    const double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

void GumbelFromUniformKernel(const double* u, double* noise, std::size_t n) {
  std::size_t j = 0;
  for (; j + kW <= n; j += kW) {
    const VecD v = simd::LoadU(u + j);
    simd::StoreU(noise + j, -simd::LogPd(-simd::LogPd(v)));
  }
  // std::log resolves to the extern libm call; no scalar inline code is
  // instantiated here (elementwise per-lane LogPd matches it within the
  // documented ULP bound regardless of lane width).
  for (; j < n; ++j) noise[j] = -std::log(-std::log(u[j]));
}

const SimdKernelTable kTable = {
    simd::kIsaName,         static_cast<int>(kW),
    &SmoothedPhiBatchKernel, &SmoothedPhiTransformKernel,
    &DotKernel,              &DistanceL2Kernel,
    &GumbelFromUniformKernel};

}  // namespace HTDP_SIMD_ISA_NS
}  // namespace simd_kernel_impl
}  // namespace htdp

#endif  // HTDP_UTIL_SIMD_KERNELS_IMPL_H_
