// Baseline-ISA instance of the dispatched batch kernels: compiled with the
// binary's own flags (SSE2 on a default x86-64 build, NEON on aarch64,
// whatever -march=native gives under HTDP_NATIVE), so this table is always
// runnable and is the dispatcher's floor. See util/simd_dispatch.h.

#include "util/simd.h"
#include "util/simd_dispatch.h"

#if HTDP_SIMD_COMPILED

#include "util/simd_kernels_impl.h"

namespace htdp::simd_dispatch_internal {

const SimdKernelTable* BaseTable() { return &simd_kernel_impl::kTable; }

}  // namespace htdp::simd_dispatch_internal

#else  // !HTDP_SIMD_COMPILED

namespace htdp::simd_dispatch_internal {

const SimdKernelTable* BaseTable() { return nullptr; }

}  // namespace htdp::simd_dispatch_internal

#endif  // HTDP_SIMD_COMPILED
