#include "util/simd.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

namespace htdp {
namespace {

bool SimdEnabledFromEnv() {
  const char* value = std::getenv("HTDP_SIMD");
  if (value == nullptr) return true;
  std::string folded(value);
  for (char& c : folded) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return !(folded == "off" || folded == "0" || folded == "false" ||
           folded == "scalar");
}

std::atomic<bool>& SimdFlag() {
  static std::atomic<bool> flag{SimdEnabledFromEnv()};
  return flag;
}

}  // namespace

bool SimdEnabled() {
  return HTDP_SIMD_COMPILED != 0 &&
         SimdFlag().load(std::memory_order_relaxed);
}

void SetSimdEnabled(bool enabled) {
  SimdFlag().store(enabled, std::memory_order_relaxed);
}

SimdCaps SimdInfo() {
  return SimdCaps{simd::kIsaName, simd::kLanes, HTDP_SIMD_COMPILED != 0,
                  SimdEnabled()};
}

bool ResolveSimd(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOn:
      return HTDP_SIMD_COMPILED != 0;
    case SimdMode::kOff:
      return false;
    case SimdMode::kAuto:
      break;
  }
  return SimdEnabled();
}

}  // namespace htdp
