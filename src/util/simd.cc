#include "util/simd.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "util/simd_dispatch.h"

namespace htdp {
namespace {

bool SimdEnabledFromEnv() {
  const char* value = std::getenv("HTDP_SIMD");
  if (value == nullptr) return true;
  std::string folded(value);
  for (char& c : folded) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return !(folded == "off" || folded == "0" || folded == "false" ||
           folded == "scalar");
}

std::atomic<bool>& SimdFlag() {
  static std::atomic<bool> flag{SimdEnabledFromEnv()};
  return flag;
}

}  // namespace

bool SimdEnabled() {
  return HTDP_SIMD_COMPILED != 0 &&
         SimdFlag().load(std::memory_order_relaxed);
}

void SetSimdEnabled(bool enabled) {
  SimdFlag().store(enabled, std::memory_order_relaxed);
}

SimdCaps SimdInfo() {
  // `isa`/`lanes` follow the runtime dispatcher (the batch kernels actually
  // executed); the compile-time baseline rides along for logging. When the
  // vector layer is not compiled in there is no table and both collapse to
  // the scalar description.
  const SimdKernelTable* table = ActiveSimdKernels();
  const char* isa = table != nullptr ? table->isa : simd::kIsaName;
  const int lanes = table != nullptr ? table->lanes : simd::kLanes;
  return SimdCaps{isa,           lanes,
                  simd::kIsaName, simd::kLanes,
                  HTDP_SIMD_COMPILED != 0, SimdEnabled()};
}

bool ResolveSimd(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOn:
      return HTDP_SIMD_COMPILED != 0;
    case SimdMode::kOff:
      return false;
    case SimdMode::kAuto:
      break;
  }
  return SimdEnabled();
}

}  // namespace htdp
