// AVX2 instance of the dispatched batch kernels. CMakeLists.txt compiles
// this file with `-march=x86-64 -mavx2 -ffp-contract=off`: the explicit
// -march resets any HTDP_NATIVE flags so the TU targets exactly
// baseline+AVX2, and disabled contraction (AVX2 carries no FMA here) keeps
// every kernel's arithmetic operation-for-operation identical to the SSE2
// baseline -- same 4 lanes, same order, bit-identical results, just VEX
// encodings and wider copies. The guard below also compiles this TU to a
// null table when the whole binary is already built at AVX-512 level
// (-march=native on such a machine): the baseline table covers it.

#include "util/simd.h"
#include "util/simd_dispatch.h"

#if HTDP_SIMD_COMPILED && defined(__x86_64__) && defined(__AVX2__) && \
    !defined(__AVX512F__)

#include "util/simd_kernels_impl.h"

namespace htdp::simd_dispatch_internal {

const SimdKernelTable* Avx2Table() { return &simd_kernel_impl::kTable; }

}  // namespace htdp::simd_dispatch_internal

#else  // not an avx2-flagged x86-64 build of this TU

namespace htdp::simd_dispatch_internal {

const SimdKernelTable* Avx2Table() { return nullptr; }

}  // namespace htdp::simd_dispatch_internal

#endif
