#ifndef HTDP_UTIL_SIMD_H_
#define HTDP_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

/// Portable SIMD kernel layer.
///
/// The wrapper below is width-agnostic: `simd::VecD` is a fixed logical
/// vector of `simd::kLanes` doubles built on the GCC/Clang vector
/// extensions, so the same kernel source lowers to AVX-512, AVX2, SSE2
/// pairs or NEON pairs depending on the compile flags (see the ISA table in
/// SimdInfo()).
///
/// On x86-64 the batch kernels are additionally multi-versioned at RUNTIME:
/// the hot-loop entry points (SmoothedPhiBatch and its Catoni transform,
/// Dot / DistanceL2, the Gumbel noise transform) are compiled once per ISA
/// in dedicated translation units (util/simd_kernels_{base,avx2,avx512}.cc)
/// and selected through a one-time CPUID probe -- see util/simd_dispatch.h.
/// One shipped binary therefore hits AVX-512 or AVX2 on machines that have
/// them without an HTDP_NATIVE rebuild; everything outside those entry
/// points still lowers to the compile-time baseline ISA below. SimdInfo()
/// reports both (the dispatched `isa` and the `compiled_isa` baseline), and
/// the bench harness records them into BENCH_*.json next to `threads` and
/// `git_rev`.
///
/// Two switches control whether vectorized kernels actually run:
///  - the process-wide runtime toggle (`HTDP_SIMD` environment variable,
///    overridable with SetSimdEnabled). `HTDP_SIMD=off` forces every kernel
///    in linalg/, robust/ and dp/ down its original scalar loop, which is
///    the bit-identity reference for the golden-checksum tests: a fit under
///    `HTDP_SIMD=off` reproduces the pre-SIMD outputs bit for bit.
///  - `SolverSpec::simd`, a per-fit override threaded into the
///    robust-estimator hot path (the Catoni kernels), for callers that need
///    one scalar-reference fit inside a SIMD-enabled process.
///
/// Numerical contract: vectorized kernels are NOT bit-identical to the
/// scalar reference. Reductions (Dot, DistanceL2, MatVec) reassociate the
/// sum across lanes; the transcendental kernels (util/simd_math.h) carry
/// small documented ULP bounds. Agreement with the scalar path is pinned by
/// ULP-bound tests (tests/simd_test.cc, tests/robust_test.cc), not
/// bit-identity.

namespace htdp {

/// Per-fit SIMD override carried by SolverSpec (see solver_spec.h).
///  - kAuto: follow the process-wide toggle (the default);
///  - kOn:   vectorize if compiled in, even if the process toggle is off;
///  - kOff:  force the scalar reference path for this fit.
enum class SimdMode { kAuto, kOn, kOff };

/// Runtime description of the kernel layer. `isa`/`lanes` describe the
/// RUNTIME-DISPATCHED batch kernels (the probed best of
/// avx512f > avx2 > compile-time baseline on x86-64; elsewhere they equal
/// the compiled baseline); `compiled_isa`/`compiled_lanes` describe the
/// compile-time baseline the rest of the vector layer lowers to.
struct SimdCaps {
  const char* isa;  // "avx512f", "avx2", "sse2", "neon", "generic", "scalar"
  int lanes;        // doubles per logical vector (1 when not compiled in)
  const char* compiled_isa;  // compile-time baseline ISA of this binary
  int compiled_lanes;        // lanes of the compile-time baseline
  bool compiled;    // vector kernels were compiled into this binary
  bool enabled;     // current process-wide toggle state
};

/// True when vector kernels are compiled in AND the process-wide toggle is
/// on. Kernels branch on this once per call (relaxed atomic load).
bool SimdEnabled();

/// Flips the process-wide toggle (initially from the HTDP_SIMD environment
/// variable: "off" / "0" / "false" / "scalar" disable, anything else --
/// including unset -- enables). Affects kernels process-wide, including
/// concurrently running Engine jobs; prefer SolverSpec::simd for a per-fit
/// override.
void SetSimdEnabled(bool enabled);

/// Compile-time ISA + runtime toggle state, for logging and the bench JSON.
SimdCaps SimdInfo();

/// Resolves a per-call SimdMode against availability and the global toggle.
bool ResolveSimd(SimdMode mode);

/// RAII scalar-mode (or forced-SIMD) scope for tests that pin the scalar
/// reference, e.g. the golden-checksum suite. Not thread-safe against
/// concurrent SetSimdEnabled calls.
class ScopedSimdOverride {
 public:
  explicit ScopedSimdOverride(bool enabled) : previous_(SimdEnabled()) {
    SetSimdEnabled(enabled);
  }
  ~ScopedSimdOverride() { SetSimdEnabled(previous_); }
  ScopedSimdOverride(const ScopedSimdOverride&) = delete;
  ScopedSimdOverride& operator=(const ScopedSimdOverride&) = delete;

 private:
  bool previous_;
};

// ---------------------------------------------------------------------------
// The vector wrapper. Compiled wherever the GCC/Clang vector extensions are
// available; other compilers fall back to the scalar paths (kLanes == 1,
// SimdEnabled() == false).
// ---------------------------------------------------------------------------

#if (defined(__GNUC__) || defined(__clang__)) && !defined(HTDP_NO_SIMD)
#define HTDP_SIMD_COMPILED 1
#else
#define HTDP_SIMD_COMPILED 0
#endif

// The wrapper (and util/simd_math.h on top of it) lives in an inline
// namespace keyed by the ISA the including TU is compiled for. C++ name
// mangling ignores return types, so without this the per-ISA kernel TUs of
// the runtime dispatcher (util/simd_kernels_*.cc, built with -mavx2 /
// -mavx512f) would emit inline helpers like `Set1(double)` under the SAME
// mangled name as the baseline TUs -- with different vector widths and
// instruction encodings -- and the linker would keep one arbitrary copy: an
// ODR violation that can SIGILL on CPUs without the wider ISA. The inline
// namespace gives every ISA its own symbols while `simd::Set1` etc. keep
// resolving unqualified within each TU.
#if !HTDP_SIMD_COMPILED
#define HTDP_SIMD_ISA_NS isa_scalar
#elif defined(__AVX512F__)
#define HTDP_SIMD_ISA_NS isa_avx512f
#elif defined(__AVX2__)
#define HTDP_SIMD_ISA_NS isa_avx2
#elif defined(__x86_64__) || defined(_M_X64)
#define HTDP_SIMD_ISA_NS isa_sse2
#elif defined(__aarch64__) || defined(__ARM_NEON)
#define HTDP_SIMD_ISA_NS isa_neon
#else
#define HTDP_SIMD_ISA_NS isa_generic
#endif

namespace simd {
inline namespace HTDP_SIMD_ISA_NS {

#if HTDP_SIMD_COMPILED

#if defined(__AVX512F__)
inline constexpr int kLanes = 8;
inline constexpr const char* kIsaName = "avx512f";
#elif defined(__AVX2__)
inline constexpr int kLanes = 4;
inline constexpr const char* kIsaName = "avx2";
#elif defined(__x86_64__) || defined(_M_X64)
// Baseline x86-64: the 4-lane logical vector lowers to SSE2 pairs, which
// still buys 2-wide math plus the polynomial transcendentals.
inline constexpr int kLanes = 4;
inline constexpr const char* kIsaName = "sse2";
#elif defined(__aarch64__) || defined(__ARM_NEON)
inline constexpr int kLanes = 4;  // lowers to NEON pairs
inline constexpr const char* kIsaName = "neon";
#else
inline constexpr int kLanes = 4;  // compiler-lowered, possibly scalar code
inline constexpr const char* kIsaName = "generic";
#endif

typedef double VecD __attribute__((vector_size(sizeof(double) * kLanes)));
typedef std::int64_t VecI __attribute__((vector_size(sizeof(std::int64_t) *
                                                     kLanes)));

inline VecD Set1(double x) {
  VecD v;
  for (int i = 0; i < kLanes; ++i) v[i] = x;
  return v;
}

inline VecI Set1I(std::int64_t x) {
  VecI v;
  for (int i = 0; i < kLanes; ++i) v[i] = x;
  return v;
}

inline VecD LoadU(const double* p) {
  VecD v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreU(double* p, VecD v) { std::memcpy(p, &v, sizeof(v)); }

/// Lane select: mask lanes are all-ones (from a vector comparison) or zero.
inline VecD Select(VecI mask, VecD a, VecD b) {
  return (VecD)((mask & (VecI)a) | (~mask & (VecI)b));
}

inline VecD Abs(VecD x) {
  return (VecD)((VecI)x & Set1I(0x7FFFFFFFFFFFFFFFLL));
}

inline VecD Max(VecD a, VecD b) { return Select(a > b, a, b); }
inline VecD Min(VecD a, VecD b) { return Select(a < b, a, b); }

inline VecD Clamp(VecD x, VecD lo, VecD hi) { return Min(Max(x, lo), hi); }

/// True when every lane of a comparison result is set.
inline bool AllTrue(VecI mask) {
  std::int64_t acc = -1;
  for (int i = 0; i < kLanes; ++i) acc &= mask[i];
  return acc == -1;
}

/// True when no lane of a comparison result is set.
inline bool NoneTrue(VecI mask) {
  std::int64_t acc = 0;
  for (int i = 0; i < kLanes; ++i) acc |= mask[i];
  return acc == 0;
}

/// Sequential horizontal sum (lane 0 first): deterministic and identical
/// across ISAs of the same lane count.
inline double ReduceAdd(VecD v) {
  double acc = 0.0;
  for (int i = 0; i < kLanes; ++i) acc += v[i];
  return acc;
}

/// Round-to-nearest-even for |x| < 2^51, via the classic shift trick.
inline VecD RoundNearest(VecD x) {
  const VecD shift = Set1(6755399441055744.0);  // 1.5 * 2^52
  return (x + shift) - shift;
}

#else  // !HTDP_SIMD_COMPILED

inline constexpr int kLanes = 1;
inline constexpr const char* kIsaName = "scalar";

#endif  // HTDP_SIMD_COMPILED

}  // namespace HTDP_SIMD_ISA_NS
}  // namespace simd

}  // namespace htdp

#endif  // HTDP_UTIL_SIMD_H_
