#ifndef HTDP_UTIL_TIMER_H_
#define HTDP_UTIL_TIMER_H_

#include <chrono>

namespace htdp {

/// Minimal monotonic stopwatch used by the benchmark harness.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace htdp

#endif  // HTDP_UTIL_TIMER_H_
