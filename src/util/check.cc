#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace htdp::internal {

CheckFailure::CheckFailure(const char* file, int line, const char* condition) {
  stream_ << file << ":" << line << ": HTDP_CHECK failed: " << condition;
}

CheckFailure::~CheckFailure() {
  std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace htdp::internal
