#include "util/simd_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/simd.h"

namespace htdp {
namespace {

/// True when THIS machine can execute the named ISA. The compile-time
/// baseline is runnable by definition; the x86 variants go through the
/// compiler's CPUID probe (cached by libgcc after the first call).
bool CpuSupports(const char* isa) {
#if (defined(__GNUC__) || defined(__clang__)) && defined(__x86_64__)
  if (std::strcmp(isa, "avx2") == 0) {
    return __builtin_cpu_supports("avx2") != 0;
  }
  if (std::strcmp(isa, "avx512f") == 0) {
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0;
  }
#else
  (void)isa;
#endif
  return true;  // the compile-time baseline (sse2 / neon / generic)
}

/// The candidate tables, best first. A table is usable when it is compiled
/// in (non-null) and the CPU can run it.
const SimdKernelTable* Candidate(int rank) {
  using namespace simd_dispatch_internal;
  switch (rank) {
    case 0:
      return Avx512Table();
    case 1:
      return Avx2Table();
    default:
      return BaseTable();
  }
}

constexpr int kCandidates = 3;

bool Usable(const SimdKernelTable* table) {
  return table != nullptr && CpuSupports(table->isa);
}

const SimdKernelTable* FindByName(const char* name) {
  using namespace simd_dispatch_internal;
  if (std::strcmp(name, "baseline") == 0) {
    return Usable(BaseTable()) ? BaseTable() : nullptr;
  }
  for (int rank = 0; rank < kCandidates; ++rank) {
    const SimdKernelTable* table = Candidate(rank);
    if (table != nullptr && std::strcmp(table->isa, name) == 0) {
      return Usable(table) ? table : nullptr;
    }
  }
  return nullptr;
}

const SimdKernelTable* ProbeBest() {
  for (int rank = 0; rank < kCandidates; ++rank) {
    const SimdKernelTable* table = Candidate(rank);
    if (Usable(table)) return table;
  }
  return nullptr;  // only when the vector layer is not compiled in
}

/// One-time initial pick: HTDP_SIMD_ISA pins the table when it names a
/// usable one; otherwise (unset, unknown, or unrunnable here) the probe
/// decides. Note this selects WHICH vector kernels run, not WHETHER they
/// run -- HTDP_SIMD=off (util/simd.h) still forces the scalar reference.
const SimdKernelTable* InitialTable() {
  if (const char* requested = std::getenv("HTDP_SIMD_ISA")) {
    if (const SimdKernelTable* table = FindByName(requested)) return table;
  }
  return ProbeBest();
}

std::atomic<const SimdKernelTable*>& ActiveSlot() {
  static std::atomic<const SimdKernelTable*> slot{InitialTable()};
  return slot;
}

}  // namespace

const SimdKernelTable* ActiveSimdKernels() {
  return ActiveSlot().load(std::memory_order_relaxed);
}

bool SimdIsaAvailable(const char* isa) { return FindByName(isa) != nullptr; }

bool SetSimdIsa(const char* isa) {
  const SimdKernelTable* table = FindByName(isa);
  if (table == nullptr) return false;
  ActiveSlot().store(table, std::memory_order_relaxed);
  return true;
}

ScopedSimdIsaOverride::~ScopedSimdIsaOverride() {
  if (previous_ != nullptr) {
    ActiveSlot().store(previous_, std::memory_order_relaxed);
  }
}

}  // namespace htdp
