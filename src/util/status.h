#ifndef HTDP_UTIL_STATUS_H_
#define HTDP_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace htdp {

/// The error taxonomy of the exception-free htdp library. Every failure a
/// caller can trigger with user-supplied configuration maps onto one of
/// these codes, so services can branch on the class of error (retry,
/// reject, re-route) without parsing messages:
///
///   kInvalidProblem    -- the Problem/SolverSpec combination is malformed
///                         for the chosen solver: missing loss, constraint
///                         or sparsity target, degenerate schedule knobs.
///   kBudgetExhausted   -- the privacy budget cannot fund the request:
///                         epsilon <= 0, delta outside [0, 1), or a budget
///                         too small for the dataset (n * epsilon < 1).
///   kShapeMismatch     -- tensor geometry disagrees: x/y sample counts,
///                         w0 vs. data dimension, constraint vs. data
///                         dimension, prefix beyond the dataset.
///   kUnknownSolver     -- a registry lookup for an unregistered name.
///   kCancelled         -- the fit was cooperatively cancelled through
///                         SolverSpec::should_stop (Engine job cancel).
///   kDeadlineExceeded  -- an Engine job missed its wall-clock deadline.
///   kUnavailable       -- the service is momentarily overloaded (queue cap,
///                         per-tenant inflight cap, connection cap) and the
///                         request was shed WITHOUT running. Unlike every
///                         other code this one is RETRYABLE by contract: the
///                         request spent no privacy budget and an identical
///                         resubmission is safe (fits are deterministic at a
///                         fixed seed, so a retry is idempotent).
enum class StatusCode {
  kOk = 0,
  kInvalidProblem,
  kBudgetExhausted,
  kShapeMismatch,
  kUnknownSolver,
  kCancelled,
  kDeadlineExceeded,
  kUnavailable,
};

/// Stable lower-case name of a code, e.g. "invalid-problem".
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidProblem:
      return "invalid-problem";
    case StatusCode::kBudgetExhausted:
      return "budget-exhausted";
    case StatusCode::kShapeMismatch:
      return "shape-mismatch";
    case StatusCode::kUnknownSolver:
      return "unknown-solver";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

/// True for the codes whose contract makes an identical resubmission safe
/// and sensible: nothing ran, no budget was spent, and the condition is
/// transient. Clients branch on this (net::Client retry loop) instead of
/// hard-coding code lists.
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable;
}

/// Lightweight error carrier for the exception-free htdp library. Functions
/// that can fail on user-provided configuration (rather than on violated
/// internal invariants, which HTDP_CHECK-abort) return a Status so callers
/// can surface the problem instead of crashing.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }

  /// Back-compat spelling of InvalidProblem (the pre-taxonomy constructor).
  static Status Invalid(std::string message) {
    return Status(StatusCode::kInvalidProblem, std::move(message));
  }

  static Status InvalidProblem(std::string message) {
    return Status(StatusCode::kInvalidProblem, std::move(message));
  }
  static Status BudgetExhausted(std::string message) {
    return Status(StatusCode::kBudgetExhausted, std::move(message));
  }
  static Status ShapeMismatch(std::string message) {
    return Status(StatusCode::kShapeMismatch, std::move(message));
  }
  static Status UnknownSolver(std::string message) {
    return Status(StatusCode::kUnknownSolver, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  /// An error with an explicit code -- for re-wrapping a propagated error
  /// with caller context while preserving its class. `code` must not be
  /// kOk.
  static Status WithCode(StatusCode code, std::string message) {
    HTDP_CHECK(code != StatusCode::kOk)
        << "Status::WithCode requires an error code";
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "invalid-problem: set Problem.loss" -- the code name plus the message.
  std::string ToString() const {
    if (ok()) return "ok";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status or a value of type T: the return type of every non-aborting
/// fallible operation in the public API (Solver::TryFit,
/// SolverRegistry::Find, Engine job results). Construct implicitly from a
/// non-ok Status or from a T; `value()` on an error aborts with the carried
/// diagnostic, so `TryFit(...).value()` behaves exactly like the legacy
/// aborting Fit().
template <typename T>
class StatusOr {
 public:
  /// From an error. Aborts if `status` is Ok (an ok StatusOr must carry a
  /// value).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    HTDP_CHECK(!status_.ok())
        << "StatusOr constructed from an Ok status without a value";
  }

  StatusOr(T value)  // NOLINT(runtime/explicit)
      : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }

  /// Ok() when a value is present, the carried error otherwise.
  const Status& status() const { return status_; }

  /// The value; aborts with the carried diagnostic when !ok().
  const T& value() const& {
    HTDP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    HTDP_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    HTDP_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // Ok() iff value_ holds a value
  std::optional<T> value_;
};

/// Early-returns a non-ok Status from the enclosing function:
///   HTDP_RETURN_IF_ERROR(spec.Resolve(n, d));
#define HTDP_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::htdp::Status htdp_return_if_error_s = (expr); \
    if (!htdp_return_if_error_s.ok()) return htdp_return_if_error_s; \
  } while (false)

#define HTDP_STATUS_CONCAT_IMPL_(a, b) a##b
#define HTDP_STATUS_CONCAT_(a, b) HTDP_STATUS_CONCAT_IMPL_(a, b)

/// Evaluates a StatusOr<T> expression; early-returns its error, otherwise
/// binds the moved-out value to `lhs` (a declaration or assignable lvalue):
///   HTDP_ASSIGN_OR_RETURN(const SolverSpec resolved,
///                         TryResolveSpec(*this, problem, spec));
#define HTDP_ASSIGN_OR_RETURN(lhs, expr)                              \
  auto HTDP_STATUS_CONCAT_(htdp_statusor_, __LINE__) = (expr);        \
  if (!HTDP_STATUS_CONCAT_(htdp_statusor_, __LINE__).ok()) {          \
    return HTDP_STATUS_CONCAT_(htdp_statusor_, __LINE__).status();    \
  }                                                                   \
  lhs = std::move(HTDP_STATUS_CONCAT_(htdp_statusor_, __LINE__)).value()

}  // namespace htdp

#endif  // HTDP_UTIL_STATUS_H_
