#ifndef HTDP_UTIL_STATUS_H_
#define HTDP_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace htdp {

/// Lightweight error carrier for the exception-free htdp library. Functions
/// that can fail on user-provided configuration (rather than on violated
/// internal invariants, which HTDP_CHECK-abort) return a Status so callers
/// can surface the problem instead of crashing.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Invalid(std::string message) {
    return Status(std::move(message));
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  explicit Status(std::string message)
      : ok_(false), message_(std::move(message)) {}

  bool ok_ = true;
  std::string message_;
};

}  // namespace htdp

#endif  // HTDP_UTIL_STATUS_H_
