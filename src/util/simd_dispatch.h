#ifndef HTDP_UTIL_SIMD_DISPATCH_H_
#define HTDP_UTIL_SIMD_DISPATCH_H_

#include <cstddef>

/// Runtime SIMD ISA dispatch for the batch kernels.
///
/// The hot-loop entry points -- the Catoni SmoothedPhi batch + transform,
/// the Dot / DistanceL2 reductions, and the Gumbel noise transform of the
/// exponential mechanism -- are compiled once per ISA into dedicated
/// translation units (util/simd_kernels_base.cc at the binary's baseline,
/// plus util/simd_kernels_avx2.cc and util/simd_kernels_avx512.cc on
/// x86-64, built with per-file -mavx2 / -mavx512f flags; see
/// CMakeLists.txt). Each TU exports one `SimdKernelTable` of function
/// pointers; a one-time CPUID probe (`__builtin_cpu_supports`) picks the
/// best table the machine can run, so a single shipped binary reaches
/// AVX-512 or AVX2 without an HTDP_NATIVE rebuild. NEON stays compile-time
/// (the base table is the only one on non-x86).
///
/// Numerical contract, pinned by tests/simd_test.cc (SimdDispatchTest):
///  - the avx2 table is compiled without FMA contraction
///    (-ffp-contract=off), and every kernel is either elementwise or
///    reduces in the same 4-lane order as the sse2 baseline, so its
///    results are BIT-IDENTICAL to the baseline table's;
///  - the avx512f table runs 8 lanes: the Dot / DistanceL2 reductions
///    reassociate across a different lane partition and the SmoothedPhi
///    batch groups cold-spill / tail elements differently, both within the
///    documented bounds (tests/simd_test.cc tolerances,
///    SmoothedPhiBatchTolerance);
///  - the HTDP_SIMD=off scalar reference never reaches any table and stays
///    the bit-identity golden path.
///
/// Selection order: the `HTDP_SIMD_ISA` environment variable, when it names
/// an available table ("avx512f", "avx2", or "baseline" / the compiled
/// baseline's name), pins the choice; otherwise the probe picks the best
/// supported ISA. SetSimdIsa / ScopedSimdIsaOverride re-pin at runtime
/// (tests use this to compare tables on one machine).

namespace htdp {

/// One ISA's batch kernels. All pointers are non-null in every exported
/// table.
struct SimdKernelTable {
  const char* isa;  // "avx512f", "avx2", or the compiled baseline's name
  int lanes;        // doubles per vector in this table's kernels

  /// out[j] = SmoothedPhi(a[j], b[j]); the vector closed form for full hot
  /// lane groups, scalar spill (SmoothedPhiScalarSpill) otherwise. Same
  /// contract as SmoothedPhiBatch(..., use_simd=true) in robust/catoni.h.
  void (*smoothed_phi_batch)(const double* a, const double* b, double* out,
                             std::size_t n);

  /// Fused Catoni transform: derives a = x/scale, b = |a|/sqrt_beta
  /// elementwise (bit-identical to the scalar derivation) and writes
  /// phi[j] = SmoothedPhi(a, b). Requires n <= 256 (one stack block of the
  /// robust-mean kernels; see kSimdBlock in robust/robust_mean.cc).
  void (*smoothed_phi_transform)(const double* xs, std::size_t n,
                                 double scale, double sqrt_beta, double* phi);

  /// Lane-widened reductions of linalg/vector_ops.h: two accumulator
  /// vectors, lanes summed in index order, scalar tail.
  double (*dot)(const double* a, const double* b, std::size_t n);
  double (*distance_l2)(const double* a, const double* b, std::size_t n);

  /// noise[j] = -log(-log(u[j])) via LogPd lanes + scalar tail (elementwise:
  /// identical per element across lane widths).
  void (*gumbel_from_uniform)(const double* u, double* noise, std::size_t n);
};

/// The dispatched table: probed once (first call), then a relaxed atomic
/// load. Null exactly when the vector layer is not compiled in
/// (HTDP_SIMD_COMPILED == 0) -- callers that checked SimdEnabled() first
/// will always see a table.
const SimdKernelTable* ActiveSimdKernels();

/// True when `isa` names a table that is both compiled into this binary and
/// runnable on this CPU. "baseline" is an alias for the compile-time
/// baseline table.
bool SimdIsaAvailable(const char* isa);

/// Re-pins dispatch to the named table if available; returns false (and
/// changes nothing) otherwise. Affects kernels process-wide, including
/// concurrently running Engine jobs -- production code should let the probe
/// decide; this exists for tests and bring-up triage.
bool SetSimdIsa(const char* isa);

/// RAII re-pin for tests that compare two tables in one process. Not
/// thread-safe against concurrent SetSimdIsa calls.
class ScopedSimdIsaOverride {
 public:
  explicit ScopedSimdIsaOverride(const char* isa)
      : previous_(ActiveSimdKernels()), ok_(SetSimdIsa(isa)) {}
  ~ScopedSimdIsaOverride();
  ScopedSimdIsaOverride(const ScopedSimdIsaOverride&) = delete;
  ScopedSimdIsaOverride& operator=(const ScopedSimdIsaOverride&) = delete;

  /// False when the requested ISA was unavailable (dispatch unchanged).
  bool ok() const { return ok_; }

 private:
  const SimdKernelTable* previous_;
  bool ok_;
};

namespace simd_dispatch_internal {

/// Per-TU table providers; null when that ISA's kernels are not compiled in
/// (non-x86 builds, or a baseline already at/above the variant's level).
const SimdKernelTable* BaseTable();
const SimdKernelTable* Avx2Table();
const SimdKernelTable* Avx512Table();

/// Out-of-line scalar spill of the SmoothedPhi batch kernels, compiled at
/// the BASELINE ISA (robust/catoni.cc): out[j] = SmoothedPhi(a[j], b[j]).
/// The per-ISA TUs call this for cold lane groups and tails instead of
/// instantiating the scalar path under wide-ISA flags (see the ODR note in
/// util/simd.h).
void SmoothedPhiScalarSpill(const double* a, const double* b, double* out,
                            std::size_t n);

}  // namespace simd_dispatch_internal

}  // namespace htdp

#endif  // HTDP_UTIL_SIMD_DISPATCH_H_
