#ifndef HTDP_UTIL_CHECK_H_
#define HTDP_UTIL_CHECK_H_

#include <sstream>
#include <string>

// Contract-checking macros. The htdp library is exception-free: violated
// preconditions and internal invariants abort the process with a diagnostic.
//
// HTDP_CHECK(cond)          -- always-on check.
// HTDP_CHECK_OP(a, op, b)   -- comparison check that prints both operands.
// HTDP_DCHECK(cond)         -- debug-only check (compiled out under NDEBUG).
//
// A message can be streamed onto any check:
//   HTDP_CHECK(n > 0) << "dataset must be non-empty, got n=" << n;

namespace htdp::internal {

// Collects a streamed diagnostic message and aborts in the destructor.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;
  [[noreturn]] ~CheckFailure();

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Turns the streamed CheckFailure expression into void so it can sit in the
// false branch of the ternary below (glog's "voidify" idiom). operator&
// binds looser than operator<<, so the whole streamed chain runs first.
struct Voidify {
  void operator&(const CheckFailure&) {}
};

// No-op sink so that disabled DCHECKs still type-check their stream operands.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

struct NullVoidify {
  void operator&(const NullStream&) {}
};

}  // namespace htdp::internal

#define HTDP_CHECK(condition)                     \
  (condition) ? (void)0                           \
              : ::htdp::internal::Voidify() &     \
                    ::htdp::internal::CheckFailure(__FILE__, __LINE__, \
                                                   #condition)

#define HTDP_CHECK_IMPL_(a, op, b, text)          \
  ((a)op(b)) ? (void)0                            \
             : ::htdp::internal::Voidify() &      \
                   (::htdp::internal::CheckFailure(__FILE__, __LINE__, text) \
                    << " (lhs=" << (a) << ", rhs=" << (b) << ")")

#define HTDP_CHECK_EQ(a, b) HTDP_CHECK_IMPL_(a, ==, b, #a " == " #b)
#define HTDP_CHECK_NE(a, b) HTDP_CHECK_IMPL_(a, !=, b, #a " != " #b)
#define HTDP_CHECK_LT(a, b) HTDP_CHECK_IMPL_(a, <, b, #a " < " #b)
#define HTDP_CHECK_LE(a, b) HTDP_CHECK_IMPL_(a, <=, b, #a " <= " #b)
#define HTDP_CHECK_GT(a, b) HTDP_CHECK_IMPL_(a, >, b, #a " > " #b)
#define HTDP_CHECK_GE(a, b) HTDP_CHECK_IMPL_(a, >=, b, #a " >= " #b)

#ifdef NDEBUG
#define HTDP_DCHECK(condition)                  \
  true ? (void)0                                \
       : ::htdp::internal::NullVoidify() & ::htdp::internal::NullStream()
#else
#define HTDP_DCHECK(condition) HTDP_CHECK(condition)
#endif

#endif  // HTDP_UTIL_CHECK_H_
