#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace htdp {
namespace {

int DetectWorkerThreads() {
  if (const char* env = std::getenv("HTDP_NUM_THREADS")) {
    int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<int>(std::min<unsigned>(hw, 16));
}

// True while the current thread is executing a pool task; nested ParallelFor
// calls then run serially instead of deadlocking on the pool.
thread_local bool t_inside_pool_task = false;

/// Persistent worker pool. Helper threads start lazily on the first dispatch
/// and live for the process lifetime. A dispatch publishes the job under the
/// mutex and hands out task indices through a single atomic whose high bits
/// carry the dispatch generation: a helper that wakes late (after the job
/// already finished, possibly after a new one started) fails the generation
/// check on its first claim attempt and goes back to sleep without ever
/// touching the stale job's context. No allocation happens per dispatch, so
/// solver hot loops can dispatch every iteration.
class WorkerPool {
 public:
  static WorkerPool& Instance() {
    static WorkerPool pool(NumWorkerThreads() - 1);
    return pool;
  }

  /// Runs task(ctx, t) for every t in [0, tasks) on the helpers plus the
  /// calling thread; blocks until all tasks completed. Serializes concurrent
  /// Run() callers.
  void Run(std::size_t tasks, void (*task)(void*, std::size_t), void* ctx) {
    if (tasks == 0) return;
    if (helpers_wanted_ == 0 || tasks == 1 || t_inside_pool_task) {
      for (std::size_t t = 0; t < tasks; ++t) task(ctx, t);
      return;
    }
    HTDP_CHECK_LT(tasks, std::size_t{1} << 32);
    const std::lock_guard<std::mutex> run_lock(run_mu_);
    EnsureStarted();

    std::uint64_t generation;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      task_ = task;
      ctx_ = ctx;
      tasks_ = tasks;
      generation = ++generation_;
      claim_.store(generation << 32, std::memory_order_release);
      completed_.store(0, std::memory_order_release);
    }
    wake_cv_.notify_all();

    // The caller participates in the same claim loop as the helpers. Mark
    // it as inside a pool task so a nested ParallelFor from the body runs
    // serially instead of re-entering run_mu_. If the body throws on the
    // caller thread, Work() has already counted the failed task as
    // completed, so waiting for full completion below stays safe -- the
    // helpers drain the remaining claims against this still-live stack
    // frame before the exception leaves Run(). (A body throwing on a helper
    // thread terminates the process, as the per-call std::thread
    // implementation did.)
    t_inside_pool_task = true;
    try {
      Work(generation, task, ctx, tasks);
    } catch (...) {
      t_inside_pool_task = false;
      AwaitCompletion();
      throw;
    }
    t_inside_pool_task = false;
    AwaitCompletion();
  }

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& helper : helpers_) helper.join();
  }

 private:
  explicit WorkerPool(int helpers_wanted)
      : helpers_wanted_(std::max(helpers_wanted, 0)) {}

  void EnsureStarted() {
    if (started_) return;
    helpers_.reserve(static_cast<std::size_t>(helpers_wanted_));
    for (int i = 0; i < helpers_wanted_; ++i) {
      helpers_.emplace_back([this] { HelperMain(); });
    }
    started_ = true;
  }

  /// Claims and executes tasks of dispatch `generation` until none remain
  /// or a newer dispatch superseded it.
  void Work(std::uint64_t generation, void (*task)(void*, std::size_t),
            void* ctx, std::size_t tasks) {
    const std::uint64_t tag = generation << 32;
    std::uint64_t claim = claim_.load(std::memory_order_acquire);
    for (;;) {
      // Stop on a stale generation (the job is gone) or exhausted indices.
      if ((claim >> 32) != (generation & 0xffffffffu)) return;
      const std::size_t index = static_cast<std::size_t>(claim & 0xffffffffu);
      if (index >= tasks) return;
      if (!claim_.compare_exchange_weak(claim, tag | (index + 1),
                                        std::memory_order_acq_rel)) {
        continue;  // lost the race; `claim` was reloaded
      }
      try {
        task(ctx, index);
      } catch (...) {
        FinishTask(tasks);  // keep the completion count exact
        throw;
      }
      FinishTask(tasks);
      claim = claim_.load(std::memory_order_acquire);
    }
  }

  void FinishTask(std::size_t tasks) {
    if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == tasks) {
      // Last task done: wake the caller. Taking the lock orders the
      // notification against the caller's predicate wait.
      { const std::lock_guard<std::mutex> lock(mu_); }
      done_cv_.notify_all();
    }
  }

  void AwaitCompletion() {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return completed_.load(std::memory_order_acquire) == tasks_;
    });
  }

  void HelperMain() {
    t_inside_pool_task = true;  // nested ParallelFor in a task runs serially
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      void (*task)(void*, std::size_t) = task_;
      void* ctx = ctx_;
      const std::size_t tasks = tasks_;
      lock.unlock();
      Work(seen, task, ctx, tasks);
      lock.lock();
    }
  }

  const int helpers_wanted_;
  bool started_ = false;
  std::vector<std::thread> helpers_;

  std::mutex run_mu_;  // serializes Run() callers

  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  void (*task_)(void*, std::size_t) = nullptr;
  void* ctx_ = nullptr;
  std::size_t tasks_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  /// generation << 32 | next-unclaimed-index. The tag makes a claim by a
  /// stale helper impossible: its CAS expects its own generation in the high
  /// bits and fails once a newer dispatch overwrote them.
  std::atomic<std::uint64_t> claim_{0};
  std::atomic<std::size_t> completed_{0};
};

}  // namespace

int NumWorkerThreads() {
  static const int kWorkers = DetectWorkerThreads();
  return kWorkers;
}

IndexRange ParallelChunkBounds(std::size_t count, std::size_t chunks,
                               std::size_t chunk) {
  HTDP_CHECK_GE(chunks, 1u);
  HTDP_CHECK_LT(chunk, chunks);
  const std::size_t base = count / chunks;
  const std::size_t remainder = count % chunks;
  const std::size_t begin = chunk * base + std::min(chunk, remainder);
  const std::size_t end = begin + base + (chunk < remainder ? 1 : 0);
  return IndexRange{begin, end};
}

namespace parallel_internal {

void PoolRun(std::size_t tasks, void (*task)(void*, std::size_t), void* ctx) {
  WorkerPool::Instance().Run(tasks, task, ctx);
}

}  // namespace parallel_internal

}  // namespace htdp
