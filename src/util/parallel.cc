#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace htdp {
namespace {

int DetectWorkerThreads() {
  if (const char* env = std::getenv("HTDP_NUM_THREADS")) {
    int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<int>(std::min<unsigned>(hw, 16));
}

}  // namespace

int NumWorkerThreads() {
  static const int kWorkers = DetectWorkerThreads();
  return kWorkers;
}

void ParallelFor(std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  // Below this many items the thread launch overhead dominates any speedup.
  constexpr std::size_t kSerialThreshold = 4096;
  const int workers = NumWorkerThreads();
  if (count == 0) return;
  if (workers <= 1 || count < kSerialThreshold) {
    body(0, count);
    return;
  }
  const std::size_t chunks =
      std::min<std::size_t>(static_cast<std::size_t>(workers), count);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  std::vector<std::thread> threads;
  threads.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(begin + chunk_size, count);
    if (begin >= end) break;
    threads.emplace_back([&body, begin, end] { body(begin, end); });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace htdp
