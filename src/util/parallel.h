#ifndef HTDP_UTIL_PARALLEL_H_
#define HTDP_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace htdp {

/// Returns the number of worker threads used by ParallelFor. Defaults to the
/// hardware concurrency, capped at 16; override with the HTDP_NUM_THREADS
/// environment variable (HTDP_NUM_THREADS=1 forces serial execution).
int NumWorkerThreads();

/// Runs `body(begin..end)` over [0, count), statically chunked across worker
/// threads. `body` receives a half-open index range and must be safe to run
/// concurrently on disjoint ranges. Falls back to a serial call when the
/// range is small or only one worker is configured. Blocks until all chunks
/// complete.
void ParallelFor(std::size_t count,
                 const std::function<void(std::size_t begin, std::size_t end)>&
                     body);

}  // namespace htdp

#endif  // HTDP_UTIL_PARALLEL_H_
