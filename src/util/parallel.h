#ifndef HTDP_UTIL_PARALLEL_H_
#define HTDP_UTIL_PARALLEL_H_

#include <cstddef>

namespace htdp {

/// Returns the number of worker threads used by ParallelFor. Defaults to the
/// hardware concurrency, capped at 16; override with the HTDP_NUM_THREADS
/// environment variable (HTDP_NUM_THREADS=1 forces serial execution).
int NumWorkerThreads();

/// Below this many items a cheap-per-item loop is not worth dispatching to
/// the pool; ParallelFor's default threshold. Callers whose items are
/// individually expensive (a chunk of samples, a matrix row block) should
/// pass an explicit lower threshold.
inline constexpr std::size_t kParallelForSerialThreshold = 4096;

/// Half-open index range [begin, end).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// The boundaries of chunk `chunk` when [0, count) is split into `chunks`
/// contiguous parts. Sizes differ by at most one (floor division with the
/// remainder spread over the leading chunks), so no chunk is ever empty when
/// chunks <= count. Requires chunk < chunks and chunks >= 1.
IndexRange ParallelChunkBounds(std::size_t count, std::size_t chunks,
                               std::size_t chunk);

namespace parallel_internal {

/// Runs task(ctx, t) for every t in [0, tasks) on the persistent worker
/// pool plus the calling thread; blocks until all tasks completed. Performs
/// no heap allocation. Nested calls from inside a pool task run serially.
void PoolRun(std::size_t tasks, void (*task)(void* ctx, std::size_t t),
             void* ctx);

}  // namespace parallel_internal

/// Runs `body(begin, end)` over [0, count), statically chunked across worker
/// threads. `body` receives a half-open index range and must be safe to run
/// concurrently on disjoint ranges. Falls back to a serial call when count <
/// min_parallel or only one worker is configured. Work is executed by a
/// persistent, lazily-started pool -- no per-call thread spawn and no heap
/// allocation per dispatch, so hot loops can call this every iteration. The
/// call blocks until all chunks complete. Chunk boundaries are a
/// deterministic function of (count, NumWorkerThreads()) only -- never of
/// scheduling -- and cover [0, count) exactly once with no empty chunk.
/// Nested calls from inside a pool task run serially.
template <typename Body>
void ParallelFor(std::size_t count, const Body& body,
                 std::size_t min_parallel = kParallelForSerialThreshold) {
  if (count == 0) return;
  const int workers = NumWorkerThreads();
  if (workers <= 1 || count < min_parallel || count < 2) {
    body(std::size_t{0}, count);
    return;
  }
  // chunks <= count, so ParallelChunkBounds never yields an empty chunk.
  const std::size_t chunks =
      count < static_cast<std::size_t>(workers)
          ? count
          : static_cast<std::size_t>(workers);
  struct Context {
    const Body* body;
    std::size_t count;
    std::size_t chunks;
  } context{&body, count, chunks};
  parallel_internal::PoolRun(
      chunks,
      [](void* ctx, std::size_t c) {
        const Context& context = *static_cast<const Context*>(ctx);
        const IndexRange range =
            ParallelChunkBounds(context.count, context.chunks, c);
        (*context.body)(range.begin, range.end);
      },
      &context);
}

}  // namespace htdp

#endif  // HTDP_UTIL_PARALLEL_H_
