// AVX-512 instance of the dispatched batch kernels. CMakeLists.txt compiles
// this file with `-march=x86-64 -mavx512f -mavx512dq -ffp-contract=off`
// (the explicit -march resets HTDP_NATIVE flags; DQ supplies the 512-bit
// integer shifts the mantissa-trick transcendentals lower to). The logical
// vector widens to 8 lanes here, so the Dot / DistanceL2 reductions
// reassociate across a different lane partition and the SmoothedPhi batch
// groups cold spills / tails differently than the 4-lane tables -- all
// within the documented tolerances (see util/simd_dispatch.h); the
// elementwise kernels stay per-element identical.

#include "util/simd.h"
#include "util/simd_dispatch.h"

#if HTDP_SIMD_COMPILED && defined(__x86_64__) && defined(__AVX512F__) && \
    defined(__AVX512DQ__)

#include "util/simd_kernels_impl.h"

namespace htdp::simd_dispatch_internal {

const SimdKernelTable* Avx512Table() { return &simd_kernel_impl::kTable; }

}  // namespace htdp::simd_dispatch_internal

#else  // not an avx512-flagged x86-64 build of this TU

namespace htdp::simd_dispatch_internal {

const SimdKernelTable* Avx512Table() { return nullptr; }

}  // namespace htdp::simd_dispatch_internal

#endif
