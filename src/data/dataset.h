#ifndef HTDP_DATA_DATASET_H_
#define HTDP_DATA_DATASET_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace htdp {

/// A supervised dataset D = {(x_i, y_i)} with features as rows of X.
struct Dataset {
  Matrix x;
  Vector y;

  std::size_t size() const { return x.rows(); }
  std::size_t dim() const { return x.cols(); }

  /// Non-aborting validation: a shape-mismatch Status when x and y disagree
  /// on the sample count or the dataset is empty, Ok otherwise. The
  /// TryFit path reports this to the caller instead of crashing.
  Status Check() const;

  /// Aborts unless Check() passes (legacy contract).
  void Validate() const;
};

/// A non-owning contiguous range of samples [begin, end) of some dataset --
/// the unit the splitting-based algorithms (1, 3, 5) operate on.
struct DatasetView {
  const Dataset* data = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  std::size_t dim() const { return data->dim(); }
  const double* Row(std::size_t i) const { return data->x.Row(begin + i); }
  double Label(std::size_t i) const { return data->y[begin + i]; }
};

/// View over the whole dataset.
DatasetView FullView(const Dataset& data);

/// Splits D into `folds` disjoint contiguous parts of (near-)equal size m =
/// floor(n/folds) (step 2 of Algorithms 1, 3 and 5; leftover samples are
/// appended to the last fold). Requires 1 <= folds <= n.
std::vector<DatasetView> SplitIntoFolds(const Dataset& data,
                                        std::size_t folds);

/// View-based overload: splits the view's sample range into `folds` disjoint
/// contiguous sub-views of the same owning dataset, with the identical
/// leftover-to-last-fold policy. Requires 1 <= folds <= view.size().
std::vector<DatasetView> SplitIntoFolds(const DatasetView& view,
                                        std::size_t folds);

/// Copies the first n samples (used by benches that sweep the sample size on
/// a fixed generated dataset, mirroring the paper's real-data protocol).
Dataset Prefix(const Dataset& data, std::size_t n);

/// Non-owning prefix: the leading n samples as a view of `data`, so
/// sample-size sweeps pay nothing per point on the curve. Requires
/// 1 <= n <= data.size().
DatasetView PrefixView(const Dataset& data, std::size_t n);

/// Non-owning prefix of a view (the leading n of its samples). Requires
/// 1 <= n <= view.size().
DatasetView Prefix(const DatasetView& view, std::size_t n);

}  // namespace htdp

#endif  // HTDP_DATA_DATASET_H_
