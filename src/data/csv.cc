#include "data/csv.h"

#include <cstddef>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace htdp {
namespace {

bool ParseRow(const std::string& line, std::vector<double>& out) {
  out.clear();
  std::stringstream stream(line);
  std::string cell;
  while (std::getline(stream, cell, ',')) {
    char* end = nullptr;
    const double value = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str()) return false;  // non-numeric cell
    out.push_back(value);
  }
  return !out.empty();
}

}  // namespace

std::optional<Dataset> LoadCsv(const std::string& path, int label_column,
                               bool skip_header) {
  std::ifstream file(path);
  if (!file.is_open()) return std::nullopt;

  std::vector<std::vector<double>> rows;
  std::string line;
  bool first = true;
  std::vector<double> parsed;
  while (std::getline(file, line)) {
    if (first && skip_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    if (!ParseRow(line, parsed)) continue;
    if (!rows.empty() && parsed.size() != rows.front().size()) continue;
    rows.push_back(parsed);
  }
  if (rows.empty()) return std::nullopt;

  const std::size_t width = rows.front().size();
  if (width < 2) return std::nullopt;
  std::size_t label_index;
  if (label_column < 0) {
    const long resolved = static_cast<long>(width) + label_column;
    if (resolved < 0) return std::nullopt;
    label_index = static_cast<std::size_t>(resolved);
  } else {
    label_index = static_cast<std::size_t>(label_column);
  }
  if (label_index >= width) return std::nullopt;

  Dataset data;
  data.x = Matrix(rows.size(), width - 1);
  data.y.resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::size_t c = 0;
    for (std::size_t j = 0; j < width; ++j) {
      if (j == label_index) {
        data.y[i] = rows[i][j];
      } else {
        data.x(i, c++) = rows[i][j];
      }
    }
  }
  return data;
}

}  // namespace htdp
