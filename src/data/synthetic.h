#ifndef HTDP_DATA_SYNTHETIC_H_
#define HTDP_DATA_SYNTHETIC_H_

#include <cstddef>

#include "data/dataset.h"
#include "rng/distributions.h"
#include "rng/rng.h"

namespace htdp {

/// Synthetic data generation exactly per Section 6.1 of the paper.

/// Draws w* uniformly at random in the unit l1 ball (the polytope-constraint
/// experiments of Figures 1-6: "randomly generate a w* such that
/// ||w*||_1 <= 1").
Vector MakeL1BallTarget(std::size_t d, Rng& rng);

/// Draws the s*-sparse target of the sparse experiments (Figures 7-11):
/// sample w ~ N(0, scale=100)^d, zero a random set of (d - s*) coordinates,
/// then project onto the unit l2 ball.
Vector MakeSparseTarget(std::size_t d, std::size_t sparsity, Rng& rng);

/// Configuration for the generators: feature distribution (i.i.d. entries of
/// x) and label-noise distribution.
struct SyntheticConfig {
  std::size_t n = 0;
  std::size_t d = 0;
  ScalarDistribution feature_dist = ScalarDistribution::Lognormal(0.0, 0.6);
  ScalarDistribution noise_dist = ScalarDistribution::Normal(0.0, 0.1);
};

/// Linear model: y = <w*, x> + iota, iota ~ noise_dist (Section 6.1).
Dataset GenerateLinear(const SyntheticConfig& config, const Vector& w_star,
                       Rng& rng);

/// Logistic model: y = sign(sigmoid(z) - 0.5) with z = <x, w*> + zeta
/// (Section 6.1); labels are in {-1, +1}.
Dataset GenerateLogistic(const SyntheticConfig& config, const Vector& w_star,
                         Rng& rng);

/// Numerically stable sigmoid.
double Sigmoid(double z);

}  // namespace htdp

#endif  // HTDP_DATA_SYNTHETIC_H_
