#ifndef HTDP_DATA_REAL_WORLD_SIM_H_
#define HTDP_DATA_REAL_WORLD_SIM_H_

#include <cstddef>
#include <string>

#include "data/dataset.h"
#include "rng/rng.h"

namespace htdp {

/// Simulated stand-ins for the four UCI datasets used in Figures 3 and 4.
///
/// The genuine datasets are not redistributable inside this repository, so
/// each simulator reproduces the properties the experiments depend on: the
/// paper's (n, d), heavy-tailed skewed features with correlated coordinates
/// (a low-rank lognormal factor model), and a planted linear / logistic
/// signal with heavy-tailed residuals. See DESIGN.md section 3 for the
/// substitution rationale. data/csv.h loads the genuine files when present.
struct RealWorldSpec {
  std::string name;
  std::size_t n = 0;  // paper's sample count
  std::size_t d = 0;  // paper's feature count
  bool classification = false;
};

/// Blog Feedback: n = 60021, d = 281, regression.
RealWorldSpec BlogFeedbackSpec();
/// Twitter: n = 583249, d = 77, regression.
RealWorldSpec TwitterSpec();
/// Winnipeg: n = 325834, d = 175, classification.
RealWorldSpec WinnipegSpec();
/// Year Prediction: n = 515345, d = 90, classification (per Figure 4 use).
RealWorldSpec YearPredictionSpec();

/// Generates a simulated dataset for `spec`, truncated to `n_cap` samples
/// (0 means the paper's full n). Features follow a rank-8 lognormal factor
/// model; labels come from a planted signal on the unit l1 ball plus
/// lognormal residual noise (regression) or the logistic link
/// (classification).
Dataset SimulateRealWorld(const RealWorldSpec& spec, std::size_t n_cap,
                          Rng& rng);

}  // namespace htdp

#endif  // HTDP_DATA_REAL_WORLD_SIM_H_
