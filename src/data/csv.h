#ifndef HTDP_DATA_CSV_H_
#define HTDP_DATA_CSV_H_

#include <optional>
#include <string>

#include "data/dataset.h"

namespace htdp {

/// Loads a numeric CSV file into a Dataset. Each row is one sample; the
/// column at `label_column` (negative counts from the end, so -1 is the last
/// column) becomes y and the remaining columns become x. Rows with parse
/// errors are skipped. Returns std::nullopt if the file cannot be opened or
/// contains no valid rows.
///
/// This is the drop-in path for the genuine UCI datasets of Figures 3-4 when
/// they are available locally (see data/real_world_sim.h for the simulated
/// stand-ins used otherwise).
std::optional<Dataset> LoadCsv(const std::string& path, int label_column,
                               bool skip_header);

}  // namespace htdp

#endif  // HTDP_DATA_CSV_H_
