#include "data/dataset.h"

#include <cstddef>
#include <string>

#include "util/check.h"

namespace htdp {

Status Dataset::Check() const {
  if (x.rows() != y.size()) {
    return Status::ShapeMismatch(
        "Dataset: x.rows() (" + std::to_string(x.rows()) +
        ") must equal y.size() (" + std::to_string(y.size()) + ")");
  }
  if (x.rows() == 0) return Status::ShapeMismatch("Dataset: x.rows() is 0");
  if (x.cols() == 0) return Status::ShapeMismatch("Dataset: x.cols() is 0");
  return Status::Ok();
}

void Dataset::Validate() const {
  const Status status = Check();
  HTDP_CHECK(status.ok()) << status.message();
}

DatasetView FullView(const Dataset& data) {
  return DatasetView{&data, 0, data.size()};
}

std::vector<DatasetView> SplitIntoFolds(const Dataset& data,
                                        std::size_t folds) {
  return SplitIntoFolds(FullView(data), folds);
}

std::vector<DatasetView> SplitIntoFolds(const DatasetView& view,
                                        std::size_t folds) {
  HTDP_CHECK_GE(folds, 1u);
  HTDP_CHECK_LE(folds, view.size());
  const std::size_t m = view.size() / folds;
  std::vector<DatasetView> views;
  views.reserve(folds);
  for (std::size_t t = 0; t < folds; ++t) {
    const std::size_t begin = view.begin + t * m;
    const std::size_t end = (t + 1 == folds) ? view.end : begin + m;
    views.push_back(DatasetView{view.data, begin, end});
  }
  return views;
}

Dataset Prefix(const Dataset& data, std::size_t n) {
  HTDP_CHECK_LE(n, data.size());
  HTDP_CHECK_GT(n, 0u);
  Dataset out;
  out.x = data.x.RowSlice(0, n);
  out.y.assign(data.y.begin(), data.y.begin() + static_cast<long>(n));
  return out;
}

DatasetView PrefixView(const Dataset& data, std::size_t n) {
  return Prefix(FullView(data), n);
}

DatasetView Prefix(const DatasetView& view, std::size_t n) {
  HTDP_CHECK_LE(n, view.size());
  HTDP_CHECK_GT(n, 0u);
  return DatasetView{view.data, view.begin, view.begin + n};
}

}  // namespace htdp
