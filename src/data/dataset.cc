#include "data/dataset.h"

#include <cstddef>

#include "util/check.h"

namespace htdp {

void Dataset::Validate() const {
  HTDP_CHECK_EQ(x.rows(), y.size());
  HTDP_CHECK_GT(x.rows(), 0u);
  HTDP_CHECK_GT(x.cols(), 0u);
}

DatasetView FullView(const Dataset& data) {
  return DatasetView{&data, 0, data.size()};
}

std::vector<DatasetView> SplitIntoFolds(const Dataset& data,
                                        std::size_t folds) {
  HTDP_CHECK_GE(folds, 1u);
  HTDP_CHECK_LE(folds, data.size());
  const std::size_t m = data.size() / folds;
  std::vector<DatasetView> views;
  views.reserve(folds);
  for (std::size_t t = 0; t < folds; ++t) {
    const std::size_t begin = t * m;
    const std::size_t end = (t + 1 == folds) ? data.size() : begin + m;
    views.push_back(DatasetView{&data, begin, end});
  }
  return views;
}

Dataset Prefix(const Dataset& data, std::size_t n) {
  HTDP_CHECK_LE(n, data.size());
  HTDP_CHECK_GT(n, 0u);
  Dataset out;
  out.x = data.x.RowSlice(0, n);
  out.y.assign(data.y.begin(), data.y.begin() + static_cast<long>(n));
  return out;
}

}  // namespace htdp
