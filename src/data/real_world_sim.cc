#include "data/real_world_sim.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "data/synthetic.h"
#include "linalg/vector_ops.h"
#include "rng/distributions.h"
#include "util/check.h"

namespace htdp {
namespace {

constexpr std::size_t kFactorRank = 8;

}  // namespace

RealWorldSpec BlogFeedbackSpec() { return {"BlogFeedback", 60021, 281, false}; }
RealWorldSpec TwitterSpec() { return {"Twitter", 583249, 77, false}; }
RealWorldSpec WinnipegSpec() { return {"Winnipeg", 325834, 175, true}; }
RealWorldSpec YearPredictionSpec() {
  return {"YearPrediction", 515345, 90, true};
}

Dataset SimulateRealWorld(const RealWorldSpec& spec, std::size_t n_cap,
                          Rng& rng) {
  const std::size_t n = (n_cap == 0) ? spec.n : std::min(n_cap, spec.n);
  const std::size_t d = spec.d;
  HTDP_CHECK_GT(n, 0u);

  // Rank-kFactorRank loading matrix with lognormal magnitudes: coordinates
  // share factors, giving the correlated, right-skewed marginals typical of
  // count-like UCI features.
  Matrix loadings(d, kFactorRank);
  for (double& entry : loadings.data()) {
    entry = SampleNormal(rng, 0.0, 0.5) * std::exp(SampleNormal(rng, 0.0, 0.4));
  }

  Dataset data;
  data.x = Matrix(n, d);
  data.y.resize(n);

  const Vector w_star = MakeL1BallTarget(d, rng);

  Vector factors(kFactorRank);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& f : factors) f = SampleLognormal(rng, 0.0, 0.6) - 1.0;
    double* row = data.x.Row(i);
    for (std::size_t j = 0; j < d; ++j) {
      double value = SampleLognormal(rng, 0.0, 0.4) - 1.0;  // idiosyncratic
      value += Dot(loadings.Row(j), factors.data(), kFactorRank);
      row[j] = value;
    }
    const double signal = Dot(row, w_star.data(), d);
    if (spec.classification) {
      const double z = signal + SampleLogistic(rng, 0.0, 0.5);
      data.y[i] = (Sigmoid(z) - 0.5 >= 0.0) ? 1.0 : -1.0;
    } else {
      data.y[i] = signal + (SampleLognormal(rng, 0.0, 0.5) - std::exp(0.125));
    }
  }
  return data;
}

}  // namespace htdp
