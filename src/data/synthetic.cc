#include "data/synthetic.h"

#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

#include "linalg/projections.h"
#include "linalg/vector_ops.h"
#include "util/check.h"
#include "util/parallel.h"

namespace htdp {
namespace {

// Derives a per-row generator so rows can be filled in parallel while the
// output stays deterministic for a fixed master seed (independent of the
// worker-thread count).
Rng RowRng(std::uint64_t base, std::size_t row) {
  return Rng(base ^ (0x9E3779B97f4A7C15ULL * (row + 1)));
}

}  // namespace

Vector MakeL1BallTarget(std::size_t d, Rng& rng) {
  HTDP_CHECK_GT(d, 0u);
  // Sample a direction from Laplace (gives mass to all l1-ball faces), then
  // scale by a uniform radius so ||w*||_1 <= 1 strictly.
  Vector w(d);
  for (double& entry : w) entry = SampleLaplace(rng, 1.0);
  const double norm = NormL1(w);
  HTDP_CHECK_GT(norm, 0.0);
  const double radius = rng.UniformOpen();
  Scale(radius / norm, w);
  return w;
}

Vector MakeSparseTarget(std::size_t d, std::size_t sparsity, Rng& rng) {
  HTDP_CHECK_GT(d, 0u);
  HTDP_CHECK_GT(sparsity, 0u);
  HTDP_CHECK_LE(sparsity, d);
  Vector w(d);
  for (double& entry : w) entry = SampleNormal(rng, 0.0, 100.0);
  // Zero a random subset of (d - sparsity) coordinates: Fisher-Yates pick of
  // the surviving support.
  std::vector<std::size_t> order(d);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t j = 0; j < sparsity; ++j) {
    const std::size_t pick =
        j + static_cast<std::size_t>(rng.UniformInt(d - j));
    std::swap(order[j], order[pick]);
  }
  Vector sparse(d, 0.0);
  for (std::size_t j = 0; j < sparsity; ++j) sparse[order[j]] = w[order[j]];
  ProjectOntoL2Ball(1.0, sparse);
  return sparse;
}

Dataset GenerateLinear(const SyntheticConfig& config, const Vector& w_star,
                       Rng& rng) {
  HTDP_CHECK_EQ(w_star.size(), config.d);
  HTDP_CHECK_GT(config.n, 0u);
  Dataset data;
  data.x = Matrix(config.n, config.d);
  data.y.resize(config.n);
  const std::uint64_t base = rng.Next();
  ParallelFor(config.n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      Rng row_rng = RowRng(base, i);
      double* row = data.x.Row(i);
      for (std::size_t j = 0; j < config.d; ++j) {
        row[j] = config.feature_dist.Sample(row_rng);
      }
      const double noise = config.noise_dist.Sample(row_rng);
      data.y[i] = Dot(row, w_star.data(), config.d) + noise;
    }
  });
  return data;
}

Dataset GenerateLogistic(const SyntheticConfig& config, const Vector& w_star,
                         Rng& rng) {
  HTDP_CHECK_EQ(w_star.size(), config.d);
  HTDP_CHECK_GT(config.n, 0u);
  Dataset data;
  data.x = Matrix(config.n, config.d);
  data.y.resize(config.n);
  const std::uint64_t base = rng.Next();
  ParallelFor(config.n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      Rng row_rng = RowRng(base, i);
      double* row = data.x.Row(i);
      for (std::size_t j = 0; j < config.d; ++j) {
        row[j] = config.feature_dist.Sample(row_rng);
      }
      const double z = Dot(row, w_star.data(), config.d) +
                       config.noise_dist.Sample(row_rng);
      data.y[i] = (Sigmoid(z) - 0.5 >= 0.0) ? 1.0 : -1.0;
    }
  });
  return data;
}

double Sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace htdp
