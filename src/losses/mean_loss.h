#ifndef HTDP_LOSSES_MEAN_LOSS_H_
#define HTDP_LOSSES_MEAN_LOSS_H_

#include <string>

#include "losses/loss.h"

namespace htdp {

/// The mean-estimation loss L_D(w) = E ||x - w||_2^2 of the Theorem 9 lower
/// bound and the sparse-mean example of Assumption 4. The label is unused.
/// Per-sample gradient 2 (w - x); the minimizer of the population risk is
/// the mean, and the excess risk of w equals ||w - mu||_2^2.
class MeanLoss final : public Loss {
 public:
  MeanLoss() = default;

  double Value(const double* x, double y, const Vector& w) const override;
  void Gradient(const double* x, double y, const Vector& w,
                Vector& grad) const override;
  std::string Name() const override { return "mean"; }
};

}  // namespace htdp

#endif  // HTDP_LOSSES_MEAN_LOSS_H_
