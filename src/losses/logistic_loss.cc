#include "losses/logistic_loss.h"

#include <cmath>
#include <cstddef>
#include <sstream>

#include "data/synthetic.h"
#include "util/check.h"

namespace htdp {
namespace {

// log(1 + exp(z)) without overflow.
double Log1pExp(double z) {
  if (z > 0.0) return z + std::log1p(std::exp(-z));
  return std::log1p(std::exp(z));
}

}  // namespace

LogisticLoss::LogisticLoss(double ridge) : ridge_(ridge) {
  HTDP_CHECK_GE(ridge, 0.0);
}

double LogisticLoss::Value(const double* x, double y, const Vector& w) const {
  const double margin = y * Dot(x, w.data(), w.size());
  double value = Log1pExp(-margin);
  if (ridge_ > 0.0) value += 0.5 * ridge_ * NormL2Squared(w);
  return value;
}

void LogisticLoss::Gradient(const double* x, double y, const Vector& w,
                            Vector& grad) const {
  const double margin = y * Dot(x, w.data(), w.size());
  const double scale = -y * Sigmoid(-margin);
  grad.resize(w.size());
  for (std::size_t j = 0; j < w.size(); ++j) {
    grad[j] = scale * x[j] + ridge_ * w[j];
  }
}

bool LogisticLoss::GradientAsScaledFeature(const double* x, double y,
                                           const Vector& w,
                                           double* scale) const {
  const double margin = y * Dot(x, w.data(), w.size());
  *scale = -y * Sigmoid(-margin);
  return true;
}

std::string LogisticLoss::Name() const {
  if (ridge_ == 0.0) return "logistic";
  std::ostringstream out;
  out << "logistic+ridge(" << ridge_ << ")";
  return out.str();
}

}  // namespace htdp
