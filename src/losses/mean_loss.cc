#include "losses/mean_loss.h"

#include <cstddef>

namespace htdp {

double MeanLoss::Value(const double* x, double y, const Vector& w) const {
  (void)y;
  double acc = 0.0;
  for (std::size_t j = 0; j < w.size(); ++j) {
    const double diff = x[j] - w[j];
    acc += diff * diff;
  }
  return acc;
}

void MeanLoss::Gradient(const double* x, double y, const Vector& w,
                        Vector& grad) const {
  (void)y;
  grad.resize(w.size());
  for (std::size_t j = 0; j < w.size(); ++j) grad[j] = 2.0 * (w[j] - x[j]);
}

}  // namespace htdp
