#include "losses/squared_loss.h"

#include <cstddef>

namespace htdp {

double SquaredLoss::Value(const double* x, double y, const Vector& w) const {
  const double residual = Dot(x, w.data(), w.size()) - y;
  return residual * residual;
}

void SquaredLoss::Gradient(const double* x, double y, const Vector& w,
                           Vector& grad) const {
  const double scale = 2.0 * (Dot(x, w.data(), w.size()) - y);
  grad.resize(w.size());
  for (std::size_t j = 0; j < w.size(); ++j) grad[j] = scale * x[j];
}

bool SquaredLoss::GradientAsScaledFeature(const double* x, double y,
                                          const Vector& w,
                                          double* scale) const {
  *scale = 2.0 * (Dot(x, w.data(), w.size()) - y);
  return true;
}

}  // namespace htdp
