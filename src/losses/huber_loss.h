#ifndef HTDP_LOSSES_HUBER_LOSS_H_
#define HTDP_LOSSES_HUBER_LOSS_H_

#include <string>

#include "losses/loss.h"

namespace htdp {

/// Huber's robust regression loss l(w, (x, y)) = h_c(<x, w> - y) with
///   h_c(t) = t^2 / 2            for |t| <= c,
///   h_c(t) = c |t| - c^2 / 2    otherwise.
/// Convex and smooth with a bounded derivative |h_c'| <= c; combined with
/// coordinate-wise bounded second moments of x it satisfies Assumption 1,
/// making it a natural convex companion to the biweight loss of Theorem 3.
class HuberLoss final : public Loss {
 public:
  explicit HuberLoss(double c = 1.0);

  double Value(const double* x, double y, const Vector& w) const override;
  void Gradient(const double* x, double y, const Vector& w,
                Vector& grad) const override;
  bool GradientAsScaledFeature(const double* x, double y, const Vector& w,
                               double* scale) const override;
  std::string Name() const override { return "huber"; }

  /// h_c and h_c' exposed for tests.
  double H(double t) const;
  double HPrime(double t) const;

 private:
  double c_;
};

}  // namespace htdp

#endif  // HTDP_LOSSES_HUBER_LOSS_H_
