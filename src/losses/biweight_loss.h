#ifndef HTDP_LOSSES_BIWEIGHT_LOSS_H_
#define HTDP_LOSSES_BIWEIGHT_LOSS_H_

#include <string>

#include "losses/loss.h"

namespace htdp {

/// Tukey's biweight robust-regression loss (the non-convex example satisfying
/// Assumption 2, Theorem 3): l(w, (x, y)) = psi(<x, w> - y) with
///   psi(t) = (c^2/6) (1 - (1 - (t/c)^2)^3)   for |t| <= c,
///   psi(t) = c^2/6                            otherwise.
/// psi'(t) = t (1 - (t/c)^2)^2 on |t| <= c and 0 outside; |psi'|, |psi''|
/// are bounded, psi' is odd and strictly positive on (0, c).
class BiweightLoss final : public Loss {
 public:
  explicit BiweightLoss(double c = 1.0);

  double Value(const double* x, double y, const Vector& w) const override;
  void Gradient(const double* x, double y, const Vector& w,
                Vector& grad) const override;
  bool GradientAsScaledFeature(const double* x, double y, const Vector& w,
                               double* scale) const override;
  std::string Name() const override { return "biweight"; }

  /// psi and psi' exposed for the Assumption-2 property tests.
  double Psi(double t) const;
  double PsiPrime(double t) const;

 private:
  double c_;
};

}  // namespace htdp

#endif  // HTDP_LOSSES_BIWEIGHT_LOSS_H_
