#include "losses/loss.h"

#include <cstddef>
#include <vector>

#include "util/check.h"
#include "util/parallel.h"

namespace htdp {

double EmpiricalRisk(const Loss& loss, const DatasetView& view,
                     const Vector& w) {
  HTDP_CHECK_GT(view.size(), 0u);
  HTDP_CHECK_EQ(view.dim(), w.size());
  const std::size_t m = view.size();
  const int workers = NumWorkerThreads();
  std::vector<double> partial(workers > 0 ? workers : 1, 0.0);
  // Chunked accumulation keeps the reduction deterministic per chunk count.
  // The partial layout (and hence the summation order) is fixed by the
  // worker count alone; whether the chunks then run pooled or serially only
  // depends on m being large enough to amortize a dispatch, so both regimes
  // produce identical bits.
  const std::size_t chunk = (m + partial.size() - 1) / partial.size();
  const std::size_t min_parallel = m >= 2048 ? 2 : partial.size() + 1;
  ParallelFor(
      partial.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t c = begin; c < end; ++c) {
          const std::size_t lo = c * chunk;
          const std::size_t hi = std::min(lo + chunk, m);
          double acc = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            acc += loss.Value(view.Row(i), view.Label(i), w);
          }
          partial[c] = acc;
        }
      },
      min_parallel);
  double total = 0.0;
  for (double p : partial) total += p;
  return total / static_cast<double>(m);
}

double EmpiricalRisk(const Loss& loss, const Dataset& data, const Vector& w) {
  return EmpiricalRisk(loss, FullView(data), w);
}

void EmpiricalGradient(const Loss& loss, const DatasetView& view,
                       const Vector& w, Vector& grad) {
  HTDP_CHECK_GT(view.size(), 0u);
  HTDP_CHECK_EQ(view.dim(), w.size());
  const std::size_t d = w.size();
  const std::size_t m = view.size();
  grad.assign(d, 0.0);

  double probe = 0.0;
  if (loss.GradientAsScaledFeature(view.Row(0), view.Label(0), w, &probe)) {
    // GLM path: grad = (1/m) sum_i scale_i x_i + ridge * w, accumulated in
    // per-chunk partials so the reduction parallelizes race-free.
    const std::size_t chunks = std::max<std::size_t>(
        1, std::min<std::size_t>(static_cast<std::size_t>(NumWorkerThreads()),
                                 (m + 511) / 512));
    const std::size_t chunk_size = (m + chunks - 1) / chunks;
    std::vector<Vector> partial(chunks, Vector(d, 0.0));
    ParallelFor(
        chunks,
        [&](std::size_t c_begin, std::size_t c_end) {
          for (std::size_t c = c_begin; c < c_end; ++c) {
            Vector& acc = partial[c];
            const std::size_t lo = c * chunk_size;
            const std::size_t hi = std::min(lo + chunk_size, m);
            double scale = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
              HTDP_CHECK(loss.GradientAsScaledFeature(view.Row(i),
                                                      view.Label(i), w,
                                                      &scale));
              AxpyKernel(scale, view.Row(i), acc.data(), d);
            }
          }
        },
        /*min_parallel=*/2);
    for (const Vector& acc : partial) Axpy(1.0, acc, grad);
    const double inv_m = 1.0 / static_cast<double>(m);
    const double ridge = loss.RidgeCoefficient();
    for (std::size_t j = 0; j < d; ++j) {
      grad[j] = grad[j] * inv_m + ridge * w[j];
    }
    return;
  }

  Vector sample_grad(d);
  for (std::size_t i = 0; i < m; ++i) {
    loss.Gradient(view.Row(i), view.Label(i), w, sample_grad);
    Axpy(1.0, sample_grad, grad);
  }
  Scale(1.0 / static_cast<double>(m), grad);
}

double ExcessEmpiricalRisk(const Loss& loss, const Dataset& data,
                           const Vector& w, const Vector& w_ref) {
  return EmpiricalRisk(loss, data, w) - EmpiricalRisk(loss, data, w_ref);
}

}  // namespace htdp
