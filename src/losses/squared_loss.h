#ifndef HTDP_LOSSES_SQUARED_LOSS_H_
#define HTDP_LOSSES_SQUARED_LOSS_H_

#include <string>

#include "losses/loss.h"

namespace htdp {

/// The linear squared loss l(w, (x, y)) = (<w, x> - y)^2 used by LASSO
/// (Corollary 1, Algorithms 2 and 3). Gradient 2 x (<x, w> - y).
class SquaredLoss final : public Loss {
 public:
  SquaredLoss() = default;

  double Value(const double* x, double y, const Vector& w) const override;
  void Gradient(const double* x, double y, const Vector& w,
                Vector& grad) const override;
  bool GradientAsScaledFeature(const double* x, double y, const Vector& w,
                               double* scale) const override;
  std::string Name() const override { return "squared"; }
};

}  // namespace htdp

#endif  // HTDP_LOSSES_SQUARED_LOSS_H_
