#include "losses/biweight_loss.h"

#include <cmath>
#include <cstddef>

#include "util/check.h"

namespace htdp {

BiweightLoss::BiweightLoss(double c) : c_(c) { HTDP_CHECK_GT(c, 0.0); }

double BiweightLoss::Psi(double t) const {
  const double cap = c_ * c_ / 6.0;
  if (std::abs(t) >= c_) return cap;
  const double r = t / c_;
  const double inner = 1.0 - r * r;
  return cap * (1.0 - inner * inner * inner);
}

double BiweightLoss::PsiPrime(double t) const {
  if (std::abs(t) >= c_) return 0.0;
  const double r = t / c_;
  const double inner = 1.0 - r * r;
  return t * inner * inner;
}

double BiweightLoss::Value(const double* x, double y, const Vector& w) const {
  return Psi(Dot(x, w.data(), w.size()) - y);
}

void BiweightLoss::Gradient(const double* x, double y, const Vector& w,
                            Vector& grad) const {
  const double scale = PsiPrime(Dot(x, w.data(), w.size()) - y);
  grad.resize(w.size());
  for (std::size_t j = 0; j < w.size(); ++j) grad[j] = scale * x[j];
}

bool BiweightLoss::GradientAsScaledFeature(const double* x, double y,
                                           const Vector& w,
                                           double* scale) const {
  *scale = PsiPrime(Dot(x, w.data(), w.size()) - y);
  return true;
}

}  // namespace htdp
