#include "losses/huber_loss.h"

#include <cmath>
#include <cstddef>

#include "util/check.h"

namespace htdp {

HuberLoss::HuberLoss(double c) : c_(c) { HTDP_CHECK_GT(c, 0.0); }

double HuberLoss::H(double t) const {
  const double magnitude = std::abs(t);
  if (magnitude <= c_) return 0.5 * t * t;
  return c_ * magnitude - 0.5 * c_ * c_;
}

double HuberLoss::HPrime(double t) const {
  if (t > c_) return c_;
  if (t < -c_) return -c_;
  return t;
}

double HuberLoss::Value(const double* x, double y, const Vector& w) const {
  return H(Dot(x, w.data(), w.size()) - y);
}

void HuberLoss::Gradient(const double* x, double y, const Vector& w,
                         Vector& grad) const {
  const double scale = HPrime(Dot(x, w.data(), w.size()) - y);
  grad.resize(w.size());
  for (std::size_t j = 0; j < w.size(); ++j) grad[j] = scale * x[j];
}

bool HuberLoss::GradientAsScaledFeature(const double* x, double y,
                                        const Vector& w,
                                        double* scale) const {
  *scale = HPrime(Dot(x, w.data(), w.size()) - y);
  return true;
}

}  // namespace htdp
