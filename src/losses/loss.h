#ifndef HTDP_LOSSES_LOSS_H_
#define HTDP_LOSSES_LOSS_H_

#include <string>

#include "data/dataset.h"
#include "linalg/vector_ops.h"

namespace htdp {

/// Per-sample loss l(w, (x, y)) with gradients in w. Implementations must be
/// stateless and thread-compatible: the robust gradient estimator evaluates
/// them concurrently across samples.
class Loss {
 public:
  virtual ~Loss() = default;

  /// l(w, (x, y)). `x` points at dim() contiguous feature values.
  virtual double Value(const double* x, double y, const Vector& w) const = 0;

  /// Writes nabla_w l(w, (x, y)) into `grad` (resized to w.size()).
  virtual void Gradient(const double* x, double y, const Vector& w,
                        Vector& grad) const = 0;

  /// GLM fast path: if the gradient factors as scale(w,x,y) * x +
  /// RidgeCoefficient() * w, stores the scalar in *scale and returns true.
  /// The robust gradient estimator uses this to stream per-coordinate
  /// gradients without materializing a d-vector per sample.
  virtual bool GradientAsScaledFeature(const double* x, double y,
                                       const Vector& w, double* scale) const {
    (void)x;
    (void)y;
    (void)w;
    (void)scale;
    return false;
  }

  /// Coefficient of the (lambda/2)||w||^2 ridge term, 0 if none.
  virtual double RidgeCoefficient() const { return 0.0; }

  virtual std::string Name() const = 0;
};

/// Empirical risk (1/m) sum_i l(w, (x_i, y_i)) over a dataset view.
double EmpiricalRisk(const Loss& loss, const DatasetView& view,
                     const Vector& w);
double EmpiricalRisk(const Loss& loss, const Dataset& data, const Vector& w);

/// Empirical gradient (1/m) sum_i nabla l(w, (x_i, y_i)); resizes `grad`.
void EmpiricalGradient(const Loss& loss, const DatasetView& view,
                       const Vector& w, Vector& grad);

/// L_hat(w) - L_hat(w_ref): the excess empirical risk, the measurement used
/// throughout Section 6 (with w_ref = w*).
double ExcessEmpiricalRisk(const Loss& loss, const Dataset& data,
                           const Vector& w, const Vector& w_ref);

}  // namespace htdp

#endif  // HTDP_LOSSES_LOSS_H_
