#ifndef HTDP_LOSSES_LOGISTIC_LOSS_H_
#define HTDP_LOSSES_LOGISTIC_LOSS_H_

#include <string>

#include "losses/loss.h"

namespace htdp {

/// Logistic loss for labels y in {-1, +1}:
///   l(w, (x, y)) = log(1 + exp(-y <w, x>)) + (ridge/2) ||w||^2.
/// ridge = 0 gives the plain logistic regression of Figures 2 and 4;
/// ridge > 0 gives the l2-regularized GLM that satisfies Assumption 4
/// (Figures 10 and 11 with Algorithm 5).
class LogisticLoss final : public Loss {
 public:
  explicit LogisticLoss(double ridge = 0.0);

  double Value(const double* x, double y, const Vector& w) const override;
  void Gradient(const double* x, double y, const Vector& w,
                Vector& grad) const override;
  bool GradientAsScaledFeature(const double* x, double y, const Vector& w,
                               double* scale) const override;
  double RidgeCoefficient() const override { return ridge_; }
  std::string Name() const override;

 private:
  double ridge_;
};

}  // namespace htdp

#endif  // HTDP_LOSSES_LOGISTIC_LOSS_H_
