#ifndef HTDP_OBS_TRACE_H_
#define HTDP_OBS_TRACE_H_

/// ## obs::trace -- thread-local ring-buffer span tracing
///
/// Design contract (ROADMAP open item 4):
///   - Record path does zero heap allocation: each thread owns a
///     fixed-capacity ring of POD Span records, drop-oldest on overflow
///     (the ring keeps the most recent window; `dropped` counts the rest).
///   - One coarse clock read per span edge (obs/clock.h NowNanos()).
///   - `HTDP_TRACE_SPAN("name")` compiles to nothing under HTDP_OBS=0 and,
///     compiled in but runtime-disabled, costs one relaxed atomic load --
///     the <1% BM_RobustGradient budget holds with margin.
///   - Span names MUST be string literals (or otherwise immortal): the ring
///     stores the `const char*`, never a copy.
///
/// Collection is cross-thread: every thread buffer self-registers in a
/// process-wide registry; CollectTrace() snapshots them all under each
/// buffer's own mutex. Record contends on that same per-buffer mutex, but
/// only with a collector -- never with other recording threads -- so the
/// enabled hot path is an uncontended lock plus two stores.

#ifndef HTDP_OBS
#define HTDP_OBS 1
#endif

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/clock.h"

namespace htdp {
namespace obs {

/// One closed span. POD; lives in the per-thread ring.
struct Span {
  const char* name;        ///< static string literal, not owned
  std::uint64_t start_ns;  ///< obs::NowNanos() at open
  std::uint64_t end_ns;    ///< obs::NowNanos() at close
  std::uint32_t depth;     ///< nesting depth at open (0 = top level)
};

/// Everything one thread recorded, in oldest -> newest order.
struct ThreadTrace {
  std::uint32_t tid = 0;        ///< process-local sequential thread id
  std::uint64_t dropped = 0;    ///< spans evicted by ring wraparound
  std::vector<Span> spans;
};

/// Runtime toggle. Off by default in-process; htdpd turns it on at boot
/// (unless --trace=off). Relaxed load on the record path.
bool TraceEnabled();
void SetTraceEnabled(bool enabled);

/// Ring capacity (spans per thread) for buffers created AFTER the call.
/// Existing thread rings keep their size. Default 4096.
void SetTraceCapacity(std::size_t capacity);
std::size_t TraceCapacity();

/// Records a span retroactively from timestamps taken elsewhere (e.g. the
/// engine's queue-wait span: submit stamps start, dequeue stamps end).
/// No-op when tracing is disabled. `name` must be immortal.
void RecordSpan(const char* name, std::uint64_t start_ns,
                std::uint64_t end_ns);

/// Snapshot of every registered thread ring (exited threads included --
/// the registry keeps rings alive). Does not clear anything.
std::vector<ThreadTrace> CollectTrace();

/// Empties every ring and zeroes drop counters. Buffers stay registered.
void ClearTrace();

/// Current thread's nesting depth (open HTDP_TRACE_SPAN guards). Tests use
/// this; instrumented code should not.
std::uint32_t CurrentSpanDepth();

#if HTDP_OBS

/// RAII guard behind HTDP_TRACE_SPAN. Stamps start_ns at construction,
/// records the closed span at destruction. If tracing is disabled at
/// construction the guard is inert (destruction records nothing, even if
/// tracing was enabled meanwhile -- a half-stamped span would be garbage).
class SpanGuard {
 public:
  explicit SpanGuard(const char* name);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_;  ///< nullptr = inert
  std::uint64_t start_ns_;
  std::uint32_t depth_;
};

#define HTDP_OBS_CONCAT_INNER(a, b) a##b
#define HTDP_OBS_CONCAT(a, b) HTDP_OBS_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope. `name` must be a
/// string literal. Usable multiple times per scope (line-numbered symbol).
#define HTDP_TRACE_SPAN(name) \
  ::htdp::obs::SpanGuard HTDP_OBS_CONCAT(htdp_obs_span_, __LINE__)(name)

#else  // !HTDP_OBS

#define HTDP_TRACE_SPAN(name) static_cast<void>(0)

#endif  // HTDP_OBS

}  // namespace obs
}  // namespace htdp

#endif  // HTDP_OBS_TRACE_H_
