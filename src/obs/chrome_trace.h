#ifndef HTDP_OBS_CHROME_TRACE_H_
#define HTDP_OBS_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace htdp {
namespace obs {

/// Serializes collected thread traces as Chrome trace-event JSON -- the
/// object form `{"traceEvents": [...]}` that chrome://tracing and Perfetto
/// load directly. Every span becomes a complete ("ph":"X") event with
/// microsecond `ts`/`dur` (fractional, so nanosecond precision survives);
/// each thread gets a thread_name metadata event, and dropped-span counts
/// are surfaced as a counter event so truncation is visible in the UI.
/// The top-level `otherData` object tags the capture with the runtime SIMD
/// ISA actually dispatched and the worker-thread count, so archived traces
/// from different machines or HTDP_SIMD settings stay distinguishable.
std::string SerializeChromeTrace(const std::vector<ThreadTrace>& threads);

/// CollectTrace() + SerializeChromeTrace() in one call -- what the daemon's
/// METRICS(trace) handler and tests use.
std::string DumpChromeTrace();

}  // namespace obs
}  // namespace htdp

#endif  // HTDP_OBS_CHROME_TRACE_H_
