#include "obs/trace.h"

#include <atomic>
#include <memory>
#include <mutex>

namespace htdp {
namespace obs {
namespace {

std::atomic<bool> g_trace_enabled{false};
std::atomic<std::size_t> g_trace_capacity{4096};

/// One thread's fixed ring. Created lazily on that thread's first record,
/// registered globally, kept alive by the registry past thread exit so a
/// late CollectTrace() still sees short-lived worker threads' spans.
///
/// The mutex is per-buffer: the owning thread (records) only ever contends
/// with a collector (snapshot/clear), so the record path's lock is
/// uncontended in steady state.
struct ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t id, std::size_t capacity)
      : tid(id), ring(capacity > 0 ? capacity : 1) {}

  void Record(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
              std::uint32_t depth) {
    std::lock_guard<std::mutex> lock(mu);
    Span& slot = ring[next];
    if (count == ring.size()) {
      ++dropped;  // overwrote the oldest span
    } else {
      ++count;
    }
    slot.name = name;
    slot.start_ns = start_ns;
    slot.end_ns = end_ns;
    slot.depth = depth;
    next = (next + 1) % ring.size();
  }

  ThreadTrace Snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    ThreadTrace out;
    out.tid = tid;
    out.dropped = dropped;
    out.spans.reserve(count);
    // Oldest span sits at `next` once the ring has wrapped, at 0 before.
    std::size_t start = (count == ring.size()) ? next : 0;
    for (std::size_t i = 0; i < count; ++i) {
      out.spans.push_back(ring[(start + i) % ring.size()]);
    }
    return out;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu);
    count = 0;
    next = 0;
    dropped = 0;
  }

  std::mutex mu;
  const std::uint32_t tid;
  std::vector<Span> ring;  // sized once at construction, never resized
  std::size_t count = 0;   // valid spans currently held
  std::size_t next = 0;    // slot the next record writes
  std::uint64_t dropped = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();  // immortal: threads may
  return *registry;                            // record during exit
}

thread_local std::shared_ptr<ThreadBuffer> t_buffer;
thread_local std::uint32_t t_depth = 0;

ThreadBuffer& LocalBuffer() {
  if (!t_buffer) {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    t_buffer = std::make_shared<ThreadBuffer>(
        registry.next_tid++, g_trace_capacity.load(std::memory_order_relaxed));
    registry.buffers.push_back(t_buffer);
  }
  return *t_buffer;
}

}  // namespace

bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void SetTraceEnabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void SetTraceCapacity(std::size_t capacity) {
  g_trace_capacity.store(capacity > 0 ? capacity : 1,
                         std::memory_order_relaxed);
}

std::size_t TraceCapacity() {
  return g_trace_capacity.load(std::memory_order_relaxed);
}

void RecordSpan(const char* name, std::uint64_t start_ns,
                std::uint64_t end_ns) {
  if (!TraceEnabled()) return;
  LocalBuffer().Record(name, start_ns, end_ns, t_depth);
}

std::vector<ThreadTrace> CollectTrace() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  std::vector<ThreadTrace> out;
  out.reserve(buffers.size());
  for (const auto& buffer : buffers) {
    ThreadTrace trace = buffer->Snapshot();
    if (!trace.spans.empty() || trace.dropped > 0) {
      out.push_back(std::move(trace));
    }
  }
  return out;
}

void ClearTrace() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  for (const auto& buffer : buffers) buffer->Clear();
}

std::uint32_t CurrentSpanDepth() { return t_depth; }

#if HTDP_OBS

SpanGuard::SpanGuard(const char* name) {
  if (!TraceEnabled()) {
    name_ = nullptr;
    return;
  }
  name_ = name;
  depth_ = t_depth++;
  start_ns_ = NowNanos();
}

SpanGuard::~SpanGuard() {
  if (name_ == nullptr) return;
  std::uint64_t end_ns = NowNanos();
  --t_depth;
  LocalBuffer().Record(name_, start_ns_, end_ns, depth_);
}

#endif  // HTDP_OBS

}  // namespace obs
}  // namespace htdp
