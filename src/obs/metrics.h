#ifndef HTDP_OBS_METRICS_H_
#define HTDP_OBS_METRICS_H_

/// ## obs::metrics -- process-wide counters, gauges, histograms
///
/// One global registry (MetricRegistry::Global()). Instrumented code looks
/// a metric up once (mutex-guarded map, pointer is stable for the process
/// lifetime) and afterwards touches only atomics -- the hot path is
/// lock-free. Per-tenant series are the same name with different labels.
///
/// Exporters: ToPrometheus() emits text exposition format (histograms as
/// _bucket{le=}/_sum/_count plus derived _p50/_p99 gauge families so a
/// scrape shows quantiles without server-side PromQL), ToJson() a stable
/// machine-readable dump. Both are wired through the METRICS wire request.
///
/// ResetForTest() zeroes every value but never deallocates: cached metric
/// pointers in instrumented code stay valid across tests.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace htdp {
namespace obs {

/// Label set for one series, e.g. {{"tenant", "acme"}}. Order-insensitive
/// (the registry canonicalizes by sorting on key).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. Relaxed atomics: counters are
/// statistics, not synchronization.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time double value (queue depth, buffered bytes, budget left).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: cumulative-style export, lock-free Observe
/// (one bucket fetch_add + count fetch_add + sum CAS). Bucket bounds are
/// ascending upper limits; an implicit +Inf bucket catches the tail.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// q in [0,1]. Linear interpolation inside the holding bucket; the +Inf
  /// bucket clamps to the last finite bound. 0 observations -> 0.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (NOT cumulative) counts; size = bounds().size() + 1, the
  /// last entry being the +Inf bucket.
  std::vector<std::uint64_t> BucketCounts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricRegistry {
 public:
  /// The process-wide registry every instrumented layer uses.
  static MetricRegistry& Global();

  /// Get-or-create. The first call fixes `help` (and bucket bounds for
  /// histograms) for the family; later calls with the same name + labels
  /// return the identical pointer. Pointers remain valid forever.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const std::vector<double>& bounds,
                          const Labels& labels = {});

  /// Prometheus text exposition format, families sorted by name, series by
  /// label signature. Histograms additionally emit derived `<name>_p50` /
  /// `<name>_p99` gauge families.
  std::string ToPrometheus() const;

  /// Stable JSON: {"counters":[...],"gauges":[...],"histograms":[...]}.
  std::string ToJson() const;

  /// Zeroes all values, keeps all registrations (pointer stability).
  void ResetForTest();

  /// Default latency bucket ladder (seconds), 500us .. 30s, roughly
  /// exponential -- shared by fit latency and poll latency so dashboards
  /// line up.
  static const std::vector<double>& LatencySecondsBuckets();

  MetricRegistry();
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace obs
}  // namespace htdp

#endif  // HTDP_OBS_METRICS_H_
