#ifndef HTDP_OBS_CLOCK_H_
#define HTDP_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace htdp {
namespace obs {

/// ## obs::clock -- the one monotonic time source
///
/// Every observability timestamp (span edges, poll-latency gauges,
/// EngineStats rate denominators) comes from these two functions so the
/// whole stack shares a single, strictly monotonic epoch. steady_clock is
/// immune to NTP steps and wall-clock adjustment, which is what makes
/// jobs_per_second and span durations non-negative by construction.
///
/// One span edge = one NowNanos() call = one coarse clock read. Nothing in
/// obs/ reads system_clock.

/// Nanoseconds since an arbitrary fixed process-local epoch. Monotonic,
/// never decreases across calls in one process.
inline std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Same epoch as NowNanos(), as floating seconds. Engine uptime and rate
/// computations use this (satellite: monotonic jobs_per_second).
inline double MonotonicSeconds() {
  return static_cast<double>(NowNanos()) * 1e-9;
}

}  // namespace obs
}  // namespace htdp

#endif  // HTDP_OBS_CLOCK_H_
