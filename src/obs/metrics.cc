#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <mutex>

namespace htdp {
namespace obs {
namespace {

/// %.12g round-trips every value we emit (counts, seconds, epsilons)
/// without trailing-zero noise, and is locale-independent.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeJsonString(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

Labels Canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// `{k="v",k2="v2"}` or empty string for the label-less series. Doubles as
/// the series map key (canonical label order makes it unique).
std::string LabelSignature(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out += ',';
    first = false;
    out += kv.first;
    out += "=\"";
    out += EscapeLabelValue(kv.second);
    out += '"';
  }
  out += '}';
  return out;
}

std::string LabelsJson(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += EscapeJsonString(kv.first);
    out += "\":\"";
    out += EscapeJsonString(kv.second);
    out += '"';
  }
  out += '}';
  return out;
}

template <typename Metric>
struct Family {
  std::string help;
  std::vector<double> bounds;  // histograms only
  // signature -> (labels, metric); std::map gives sorted, stable export.
  std::map<std::string, std::pair<Labels, std::unique_ptr<Metric>>> series;
};

}  // namespace

void Gauge::Add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double v) {
  std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  std::uint64_t total = Count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      // +Inf bucket has no finite upper edge; clamp to the last bound.
      if (i == bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      double lower = (i == 0) ? 0.0 : bounds_[i - 1];
      double upper = bounds_[i];
      double fraction = (target - static_cast<double>(seen)) /
                        static_cast<double>(in_bucket);
      if (fraction < 0.0) fraction = 0.0;
      if (fraction > 1.0) fraction = 1.0;
      return lower + (upper - lower) * fraction;
    }
    seen += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

struct MetricRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, Family<Counter>> counters;
  std::map<std::string, Family<Gauge>> gauges;
  std::map<std::string, Family<Histogram>> histograms;
};

MetricRegistry::MetricRegistry() : impl_(std::make_unique<Impl>()) {}
MetricRegistry::~MetricRegistry() = default;

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();  // immortal
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help,
                                    const Labels& labels) {
  Labels canon = Canonical(labels);
  std::string sig = LabelSignature(canon);
  std::lock_guard<std::mutex> lock(impl_->mu);
  Family<Counter>& family = impl_->counters[name];
  if (family.help.empty()) family.help = help;
  auto& slot = family.series[sig];
  if (!slot.second) {
    slot.first = std::move(canon);
    slot.second = std::make_unique<Counter>();
  }
  return slot.second.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help,
                                const Labels& labels) {
  Labels canon = Canonical(labels);
  std::string sig = LabelSignature(canon);
  std::lock_guard<std::mutex> lock(impl_->mu);
  Family<Gauge>& family = impl_->gauges[name];
  if (family.help.empty()) family.help = help;
  auto& slot = family.series[sig];
  if (!slot.second) {
    slot.first = std::move(canon);
    slot.second = std::make_unique<Gauge>();
  }
  return slot.second.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        const std::vector<double>& bounds,
                                        const Labels& labels) {
  Labels canon = Canonical(labels);
  std::string sig = LabelSignature(canon);
  std::lock_guard<std::mutex> lock(impl_->mu);
  Family<Histogram>& family = impl_->histograms[name];
  if (family.help.empty()) {
    family.help = help;
    family.bounds = bounds;
  }
  auto& slot = family.series[sig];
  if (!slot.second) {
    slot.first = std::move(canon);
    // The family's first registration fixes the ladder for every series so
    // per-tenant histograms stay aggregatable.
    slot.second = std::make_unique<Histogram>(family.bounds);
  }
  return slot.second.get();
}

std::string MetricRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out;
  for (const auto& [name, family] : impl_->counters) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " counter\n";
    for (const auto& [sig, series] : family.series) {
      out += name + sig + " " +
             std::to_string(series.second->Value()) + "\n";
    }
  }
  for (const auto& [name, family] : impl_->gauges) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " gauge\n";
    for (const auto& [sig, series] : family.series) {
      out += name + sig + " " + FormatDouble(series.second->Value()) + "\n";
    }
  }
  for (const auto& [name, family] : impl_->histograms) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " histogram\n";
    for (const auto& [sig, series] : family.series) {
      const Labels& labels = series.first;
      const Histogram& h = *series.second;
      std::vector<std::uint64_t> buckets = h.BucketCounts();
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        cumulative += buckets[i];
        Labels le = labels;
        le.emplace_back("le", FormatDouble(h.bounds()[i]));
        out += name + "_bucket" + LabelSignature(le) + " " +
               std::to_string(cumulative) + "\n";
      }
      Labels le = labels;
      le.emplace_back("le", "+Inf");
      out += name + "_bucket" + LabelSignature(le) + " " +
             std::to_string(h.Count()) + "\n";
      out += name + "_sum" + sig + " " + FormatDouble(h.Sum()) + "\n";
      out += name + "_count" + sig + " " + std::to_string(h.Count()) + "\n";
    }
    // Derived quantiles as sibling gauge families: a plain scrape (or the
    // obs_smoke checker) sees p50/p99 without PromQL.
    for (const char* q : {"_p50", "_p99"}) {
      double quantile = (q[2] == '5') ? 0.50 : 0.99;
      out += "# HELP " + name + q + " " + family.help +
             " (derived quantile)\n";
      out += "# TYPE " + name + q + " gauge\n";
      for (const auto& [sig, series] : family.series) {
        out += name + q + sig + " " +
               FormatDouble(series.second->Quantile(quantile)) + "\n";
      }
    }
  }
  return out;
}

std::string MetricRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [name, family] : impl_->counters) {
    for (const auto& [sig, series] : family.series) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"" + EscapeJsonString(name) +
             "\",\"labels\":" + LabelsJson(series.first) +
             ",\"value\":" + std::to_string(series.second->Value()) + "}";
    }
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [name, family] : impl_->gauges) {
    for (const auto& [sig, series] : family.series) {
      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"" + EscapeJsonString(name) +
             "\",\"labels\":" + LabelsJson(series.first) +
             ",\"value\":" + FormatDouble(series.second->Value()) + "}";
    }
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [name, family] : impl_->histograms) {
    for (const auto& [sig, series] : family.series) {
      if (!first) out += ',';
      first = false;
      const Histogram& h = *series.second;
      out += "{\"name\":\"" + EscapeJsonString(name) +
             "\",\"labels\":" + LabelsJson(series.first) +
             ",\"count\":" + std::to_string(h.Count()) +
             ",\"sum\":" + FormatDouble(h.Sum()) +
             ",\"p50\":" + FormatDouble(h.Quantile(0.50)) +
             ",\"p99\":" + FormatDouble(h.Quantile(0.99)) + ",\"buckets\":[";
      std::vector<std::uint64_t> buckets = h.BucketCounts();
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (i > 0) out += ',';
        std::string le = (i < h.bounds().size())
                             ? FormatDouble(h.bounds()[i])
                             : std::string("\"+Inf\"");
        out += "{\"le\":" + le + ",\"count\":" + std::to_string(buckets[i]) +
               "}";
      }
      out += "]}";
    }
  }
  out += "]}";
  return out;
}

void MetricRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, family] : impl_->counters) {
    for (auto& [sig, series] : family.series) series.second->Reset();
  }
  for (auto& [name, family] : impl_->gauges) {
    for (auto& [sig, series] : family.series) series.second->Reset();
  }
  for (auto& [name, family] : impl_->histograms) {
    for (auto& [sig, series] : family.series) series.second->Reset();
  }
}

const std::vector<double>& MetricRegistry::LatencySecondsBuckets() {
  static const std::vector<double>* buckets = new std::vector<double>{
      0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
      0.25,   0.5,   1.0,    2.5,   5.0,  10.0,  30.0};
  return *buckets;
}

}  // namespace obs
}  // namespace htdp
