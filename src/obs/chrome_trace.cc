#include "obs/chrome_trace.h"

#include <cinttypes>
#include <cstdio>

#include "util/parallel.h"
#include "util/simd.h"

namespace htdp {
namespace obs {
namespace {

/// Span names are compile-time literals under our control, but the escape
/// keeps the serializer safe if someone ever routes a dynamic immortal
/// string through RecordSpan.
void AppendJsonEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// ts/dur are microseconds; emit ns precision as fixed 3-decimal values
/// so the JSON stays locale-independent and byte-stable.
void AppendMicros(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

std::string SerializeChromeTrace(const std::vector<ThreadTrace>& threads) {
  std::string out;
  out.reserve(256 + threads.size() * 4096);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (const ThreadTrace& thread : threads) {
    char buf[128];
    comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"htdp-thread-%u\"}}",
                  thread.tid, thread.tid);
    out += buf;
    if (thread.dropped > 0) {
      comma();
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"spans_dropped\",\"ph\":\"C\",\"pid\":1,"
                    "\"tid\":%u,\"ts\":0,\"args\":{\"dropped\":%" PRIu64 "}}",
                    thread.tid, thread.dropped);
      out += buf;
    }
    for (const Span& span : thread.spans) {
      comma();
      out += "{\"name\":\"";
      AppendJsonEscaped(out, span.name);
      out += "\",\"cat\":\"htdp\",\"ph\":\"X\",\"pid\":1,\"tid\":";
      std::snprintf(buf, sizeof(buf), "%u", thread.tid);
      out += buf;
      out += ",\"ts\":";
      AppendMicros(out, span.start_ns);
      out += ",\"dur\":";
      std::uint64_t dur_ns =
          span.end_ns >= span.start_ns ? span.end_ns - span.start_ns : 0;
      AppendMicros(out, dur_ns);
      out += '}';
    }
  }
  // otherData rides at the top level of the object form (ignored by the
  // trace UIs, kept by archive tooling): the ISA the kernel dispatcher
  // actually selected on this host and the worker-thread count, so two
  // captures of the same workload are attributable to their runtime config.
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "],\"otherData\":{\"simd\":\"%s\",\"threads\":%d},"
                "\"displayTimeUnit\":\"ms\"}",
                SimdEnabled() ? SimdInfo().isa : "off", NumWorkerThreads());
  out += buf;
  return out;
}

std::string DumpChromeTrace() { return SerializeChromeTrace(CollectTrace()); }

}  // namespace obs
}  // namespace htdp
