#ifndef HTDP_NET_TRANSPORT_H_
#define HTDP_NET_TRANSPORT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/fault.h"
#include "util/status.h"

namespace htdp {
namespace net {

/// ## Portable socket transport for htdpd
///
/// Thin POSIX layer under the daemon and the client: RAII file descriptors,
/// IPv4 listen/dial helpers, and a single-threaded poll(2) event loop with
/// per-connection write buffering, idle timeouts and an async-signal-safe
/// wake pipe. Nothing here knows about frames or the Engine -- bytes in,
/// bytes out -- which keeps the protocol logic (daemon/server.cc) testable
/// against loopback sockets and the codec testable with no sockets at all.

/// RAII owner of a file descriptor. Moveable, not copyable.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();  // closes if valid

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (IPv4 dotted-quad or "localhost";
/// port 0 = kernel-assigned ephemeral port, read back with LocalPort).
/// SO_REUSEADDR is set so restarts do not trip over TIME_WAIT.
StatusOr<UniqueFd> ListenTcp(const std::string& host, std::uint16_t port);

/// Connects to host:port (blocking connect; the caller owns any deadline).
StatusOr<UniqueFd> DialTcp(const std::string& host, std::uint16_t port);

/// The locally-bound port of a socket -- how tests and the smoke script
/// discover the ephemeral port of an htdpd started with --port=0.
StatusOr<std::uint16_t> LocalPort(int fd);

Status SetNonBlocking(int fd);

/// Blocking write of the whole buffer (client side). Returns a typed error
/// on a broken connection; never raises SIGPIPE.
Status SendAll(int fd, const std::uint8_t* data, std::size_t n);

/// One blocking read. Returns the byte count, 0 on orderly peer shutdown,
/// or a typed error. EINTR is retried internally.
StatusOr<std::size_t> RecvSome(int fd, std::uint8_t* out, std::size_t n);

/// One-shot, process-wide SIGPIPE ignore (writes to dead sockets must
/// surface as EPIPE Statuses, not kill the daemon).
void IgnoreSigpipeOnce();

/// Blocking byte-stream interface the client side of the protocol runs on.
/// The production implementation is a socket (SocketStream); the chaos
/// harness wraps one in a FaultInjectingStream (net/fault.h) so every
/// client-side wire fault flows through the exact code paths a flaky
/// network would hit.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Writes the whole buffer or returns a typed error.
  virtual Status Send(const std::uint8_t* data, std::size_t n) = 0;

  /// One blocking read: the byte count, 0 on orderly peer shutdown, or a
  /// typed error.
  virtual StatusOr<std::size_t> Recv(std::uint8_t* out, std::size_t n) = 0;

  virtual void Close() = 0;
};

/// The real thing: a connected TCP socket via SendAll/RecvSome.
class SocketStream : public ByteStream {
 public:
  explicit SocketStream(UniqueFd fd) : fd_(std::move(fd)) {}

  Status Send(const std::uint8_t* data, std::size_t n) override {
    return SendAll(fd_.get(), data, n);
  }
  StatusOr<std::size_t> Recv(std::uint8_t* out, std::size_t n) override {
    return RecvSome(fd_.get(), out, n);
  }
  void Close() override { fd_.Reset(); }

 private:
  UniqueFd fd_;
};

/// Dials host:port and wraps the socket in a stream.
StatusOr<std::unique_ptr<ByteStream>> DialStream(const std::string& host,
                                                 std::uint16_t port);

/// ByteStream decorator that perturbs traffic according to a FaultPlan.
/// Deterministic: all decisions come from the plan's seeded stream. A
/// kDrop or kTruncate closes the underlying stream, after which every
/// operation fails with kUnavailable -- exactly what the retry loop sees
/// from a real half-open connection.
class FaultInjectingStream : public ByteStream {
 public:
  FaultInjectingStream(std::unique_ptr<ByteStream> inner, FaultPlan plan)
      : inner_(std::move(inner)), plan_(plan), rng_(plan.seed) {}

  Status Send(const std::uint8_t* data, std::size_t n) override;
  StatusOr<std::size_t> Recv(std::uint8_t* out, std::size_t n) override;
  void Close() override { inner_->Close(); }

  const FaultCounters& counters() const { return counters_; }

 private:
  std::unique_ptr<ByteStream> inner_;
  FaultPlan plan_;
  FaultRng rng_;
  FaultCounters counters_;
  bool severed_ = false;  // a drop/truncate fault already cut the stream
};

/// Single-threaded poll(2) event loop.
///
/// Threading contract: every method except Wake() must be called on the
/// loop thread (i.e. from inside a callback, or before/after Run()).
/// Wake() is callable from any thread AND from signal handlers -- it only
/// write(2)s one byte to a pipe -- and schedules on_wake on the loop thread.
class EventLoop {
 public:
  struct Callbacks {
    /// A new connection was accepted (already non-blocking and registered).
    std::function<void(int fd)> on_accept;
    /// Bytes arrived on a connection.
    std::function<void(int fd, const std::uint8_t* data, std::size_t n)>
        on_data;
    /// A connection was removed (peer closed, error, idle timeout, or an
    /// explicit Close). The fd is already closed; use it only as a key.
    std::function<void(int fd, const Status& reason)> on_close;
    /// Wake() was called (runs once per drain, on the loop thread).
    std::function<void()> on_wake;
  };

  struct Options {
    /// Idle connections are closed after this long; <= 0 disables.
    double idle_timeout_seconds = 0.0;

    /// A connection whose un-flushed write backlog exceeds this many bytes
    /// is disconnected -- the slow-client guard that keeps one stalled
    /// reader from growing the daemon's memory without bound. 0 = no cap.
    /// The close is DEFERRED to the end of the loop iteration so Send()
    /// stays safe to call mid-iteration (no re-entrant on_close).
    std::size_t max_write_buffer_bytes = 0;

    /// Server-side wire-fault injection (the HTDP_FAULT_PLAN knob).
    /// Unset = no faults.
    std::optional<FaultPlan> fault;
  };

  EventLoop(Callbacks callbacks, Options options);

  /// Back-compat convenience: only the idle timeout configured.
  EventLoop(Callbacks callbacks, double idle_timeout_seconds);

  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the wake pipe. Must be called (and checked) before Run().
  Status Init();

  /// Hands the listening socket to the loop (made non-blocking here).
  void SetListener(UniqueFd listener);

  /// Stops accepting: the listener is closed; existing connections live on.
  void StopAccepting();
  bool accepting() const { return listener_.valid(); }

  /// Registers an externally-created connection (tests use this).
  void AddConnection(UniqueFd fd);

  /// Queues bytes on the connection's write buffer (drained as POLLOUT
  /// fires). No-op for an unknown fd (it may have just closed).
  void Send(int fd, const std::uint8_t* data, std::size_t n);

  /// Closes after the write buffer drains -- the "send ERROR, then hang up"
  /// path. No more on_data will be delivered for this fd.
  void CloseAfterFlush(int fd, Status reason);

  /// Immediate close (buffered writes are dropped).
  void Close(int fd, Status reason);

  /// Exempts a connection from the idle sweep while it has server-side work
  /// in flight (e.g. awaiting a streamed fit). Nestable: each MarkBusy(true)
  /// must be matched by a MarkBusy(false).
  void MarkBusy(int fd, bool busy);

  /// Arms a read deadline: unless more bytes arrive (or the deadline is
  /// re-armed / disarmed with seconds <= 0) within `seconds`, the
  /// connection is closed with kDeadlineExceeded. Unlike the idle sweep
  /// this fires even on busy connections -- it is how the daemon reaps a
  /// peer that went half-open MID-FRAME, which looks active to the idle
  /// heuristic (recent bytes) but will never complete its frame.
  void SetReadDeadline(int fd, double seconds);

  /// Runs until Stop(). Returns the first fatal poll error, else Ok.
  Status Run();

  /// Ends Run() after the current iteration (loop thread).
  void Stop();

  /// Async-signal-safe: schedules on_wake on the loop thread.
  void Wake();

  std::size_t connection_count() const { return connections_.size(); }

  /// True when every connection's write buffer is empty.
  bool AllFlushed() const;

  /// Faults injected so far (zeros when Options::fault is unset).
  const FaultCounters& fault_counters() const { return fault_counters_; }

 private:
  struct Connection {
    UniqueFd fd;
    std::vector<std::uint8_t> outbox;
    std::size_t outbox_offset = 0;
    int busy = 0;
    bool closing = false;  // close once the outbox drains
    bool doomed = false;   // queued on pending_close_; skip further work
    Status close_reason = Status::Ok();
    std::chrono::steady_clock::time_point last_activity;
    /// Armed read deadline (SetReadDeadline); unset = none.
    std::optional<std::chrono::steady_clock::time_point> read_deadline;
    /// Fault-injection write gate: no flushing before this instant.
    std::optional<std::chrono::steady_clock::time_point> write_gate;
    bool fault_drawn = false;  // one decision per outbox generation
    std::size_t flush_limit = 0;   // this flush may not pass this offset
    bool close_at_limit = false;   // truncate fault: close when it is hit
  };

  void AcceptPending();
  /// Returns false when the connection was removed.
  bool HandleReadable(Connection& conn);
  bool HandleWritable(Connection& conn);
  void Remove(int fd, const Status& reason);
  void SweepIdle();
  int PollTimeoutMs() const;
  /// Schedules a close at the iteration boundary (safe mid-iteration).
  void DeferClose(Connection& conn, Status reason);
  void FlushPendingCloses();
  /// Applies the per-batch fault decision; returns false when the
  /// connection was removed (dropped).
  bool ApplyWriteFault(Connection& conn);

  Callbacks callbacks_;
  Options options_;
  UniqueFd listener_;
  UniqueFd wake_read_;
  UniqueFd wake_write_;
  std::map<int, Connection> connections_;
  std::vector<std::pair<int, Status>> pending_close_;
  std::optional<FaultRng> fault_rng_;
  FaultCounters fault_counters_;
  bool running_ = false;
};

}  // namespace net
}  // namespace htdp

#endif  // HTDP_NET_TRANSPORT_H_
