#ifndef HTDP_NET_TRANSPORT_H_
#define HTDP_NET_TRANSPORT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace htdp {
namespace net {

/// ## Portable socket transport for htdpd
///
/// Thin POSIX layer under the daemon and the client: RAII file descriptors,
/// IPv4 listen/dial helpers, and a single-threaded poll(2) event loop with
/// per-connection write buffering, idle timeouts and an async-signal-safe
/// wake pipe. Nothing here knows about frames or the Engine -- bytes in,
/// bytes out -- which keeps the protocol logic (daemon/server.cc) testable
/// against loopback sockets and the codec testable with no sockets at all.

/// RAII owner of a file descriptor. Moveable, not copyable.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset();  // closes if valid

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (IPv4 dotted-quad or "localhost";
/// port 0 = kernel-assigned ephemeral port, read back with LocalPort).
/// SO_REUSEADDR is set so restarts do not trip over TIME_WAIT.
StatusOr<UniqueFd> ListenTcp(const std::string& host, std::uint16_t port);

/// Connects to host:port (blocking connect; the caller owns any deadline).
StatusOr<UniqueFd> DialTcp(const std::string& host, std::uint16_t port);

/// The locally-bound port of a socket -- how tests and the smoke script
/// discover the ephemeral port of an htdpd started with --port=0.
StatusOr<std::uint16_t> LocalPort(int fd);

Status SetNonBlocking(int fd);

/// Blocking write of the whole buffer (client side). Returns a typed error
/// on a broken connection; never raises SIGPIPE.
Status SendAll(int fd, const std::uint8_t* data, std::size_t n);

/// One blocking read. Returns the byte count, 0 on orderly peer shutdown,
/// or a typed error. EINTR is retried internally.
StatusOr<std::size_t> RecvSome(int fd, std::uint8_t* out, std::size_t n);

/// One-shot, process-wide SIGPIPE ignore (writes to dead sockets must
/// surface as EPIPE Statuses, not kill the daemon).
void IgnoreSigpipeOnce();

/// Single-threaded poll(2) event loop.
///
/// Threading contract: every method except Wake() must be called on the
/// loop thread (i.e. from inside a callback, or before/after Run()).
/// Wake() is callable from any thread AND from signal handlers -- it only
/// write(2)s one byte to a pipe -- and schedules on_wake on the loop thread.
class EventLoop {
 public:
  struct Callbacks {
    /// A new connection was accepted (already non-blocking and registered).
    std::function<void(int fd)> on_accept;
    /// Bytes arrived on a connection.
    std::function<void(int fd, const std::uint8_t* data, std::size_t n)>
        on_data;
    /// A connection was removed (peer closed, error, idle timeout, or an
    /// explicit Close). The fd is already closed; use it only as a key.
    std::function<void(int fd, const Status& reason)> on_close;
    /// Wake() was called (runs once per drain, on the loop thread).
    std::function<void()> on_wake;
  };

  /// idle_timeout_seconds <= 0 disables idle sweeping.
  EventLoop(Callbacks callbacks, double idle_timeout_seconds);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the wake pipe. Must be called (and checked) before Run().
  Status Init();

  /// Hands the listening socket to the loop (made non-blocking here).
  void SetListener(UniqueFd listener);

  /// Stops accepting: the listener is closed; existing connections live on.
  void StopAccepting();
  bool accepting() const { return listener_.valid(); }

  /// Registers an externally-created connection (tests use this).
  void AddConnection(UniqueFd fd);

  /// Queues bytes on the connection's write buffer (drained as POLLOUT
  /// fires). No-op for an unknown fd (it may have just closed).
  void Send(int fd, const std::uint8_t* data, std::size_t n);

  /// Closes after the write buffer drains -- the "send ERROR, then hang up"
  /// path. No more on_data will be delivered for this fd.
  void CloseAfterFlush(int fd, Status reason);

  /// Immediate close (buffered writes are dropped).
  void Close(int fd, Status reason);

  /// Exempts a connection from the idle sweep while it has server-side work
  /// in flight (e.g. awaiting a streamed fit). Nestable: each MarkBusy(true)
  /// must be matched by a MarkBusy(false).
  void MarkBusy(int fd, bool busy);

  /// Runs until Stop(). Returns the first fatal poll error, else Ok.
  Status Run();

  /// Ends Run() after the current iteration (loop thread).
  void Stop();

  /// Async-signal-safe: schedules on_wake on the loop thread.
  void Wake();

  std::size_t connection_count() const { return connections_.size(); }

  /// True when every connection's write buffer is empty.
  bool AllFlushed() const;

 private:
  struct Connection {
    UniqueFd fd;
    std::vector<std::uint8_t> outbox;
    std::size_t outbox_offset = 0;
    int busy = 0;
    bool closing = false;  // close once the outbox drains
    Status close_reason = Status::Ok();
    std::chrono::steady_clock::time_point last_activity;
  };

  void AcceptPending();
  /// Returns false when the connection was removed.
  bool HandleReadable(Connection& conn);
  bool HandleWritable(Connection& conn);
  void Remove(int fd, const Status& reason);
  void SweepIdle();
  int PollTimeoutMs() const;

  Callbacks callbacks_;
  double idle_timeout_seconds_;
  UniqueFd listener_;
  UniqueFd wake_read_;
  UniqueFd wake_write_;
  std::map<int, Connection> connections_;
  bool running_ = false;
};

}  // namespace net
}  // namespace htdp

#endif  // HTDP_NET_TRANSPORT_H_
