#ifndef HTDP_NET_WIRE_STATUS_H_
#define HTDP_NET_WIRE_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "util/status.h"

namespace htdp {
namespace net {

/// ## The wire-status table: StatusCode <-> protocol error code
///
/// The htdpd protocol reports every failure as a numeric error code inside
/// an ERROR or JOB_STATE frame (docs/protocol.md). Client and server MUST
/// agree on those numbers forever -- an htdpctl built last year has to
/// understand a BUDGET_EXHAUSTED rejection from an htdpd built tomorrow --
/// so the mapping lives in exactly one table, below, and both directions
/// (WireStatusFor / StatusCodeFromWire) are generated from it. Never reorder
/// or renumber rows; append new codes with fresh numbers.
///
/// The numeric values deliberately do NOT depend on the StatusCode
/// enumerator order: util/status.h is free to grow or reorder its enum, and
/// the wire stays stable (tests/wire_status_test.cc pins every number).
#define HTDP_WIRE_STATUS_TABLE(X)              \
  X(StatusCode::kOk, 0)                        \
  X(StatusCode::kInvalidProblem, 1)            \
  X(StatusCode::kBudgetExhausted, 2)           \
  X(StatusCode::kShapeMismatch, 3)             \
  X(StatusCode::kUnknownSolver, 4)             \
  X(StatusCode::kCancelled, 5)                 \
  X(StatusCode::kDeadlineExceeded, 6)          \
  X(StatusCode::kUnavailable, 7)

/// The protocol code for a StatusCode. Total over the enum: the table covers
/// every StatusCode, which the round-trip test enforces.
constexpr std::uint16_t WireStatusFor(StatusCode code) {
#define HTDP_WIRE_STATUS_TO_WIRE(status_code, wire_value) \
  if (code == (status_code)) return (wire_value);
  HTDP_WIRE_STATUS_TABLE(HTDP_WIRE_STATUS_TO_WIRE)
#undef HTDP_WIRE_STATUS_TO_WIRE
  // Unreachable for in-range enumerators; a defensively-cast out-of-range
  // value degrades to the generic malformed-request code rather than UB.
  return 1;  // kInvalidProblem
}

/// The StatusCode for a protocol code; nullopt for a number this build does
/// not know (a newer peer) -- callers surface that as a typed decode error
/// instead of guessing.
constexpr std::optional<StatusCode> StatusCodeFromWire(std::uint16_t wire) {
#define HTDP_WIRE_STATUS_FROM_WIRE(status_code, wire_value) \
  if (wire == (wire_value)) return (status_code);
  HTDP_WIRE_STATUS_TABLE(HTDP_WIRE_STATUS_FROM_WIRE)
#undef HTDP_WIRE_STATUS_FROM_WIRE
  return std::nullopt;
}

/// Named constant for the code the acceptance contract calls out: an
/// over-budget tenant's SUBMIT is rejected at the socket with this value.
inline constexpr std::uint16_t kWireBudgetExhausted =
    WireStatusFor(StatusCode::kBudgetExhausted);

/// The overload-shedding code: a SUBMIT rejected because the daemon's queue,
/// per-tenant inflight cap, or connection cap is full. The carrying ERROR
/// frame includes a retry_after_ms hint; the rejection is retryable by
/// contract (nothing ran, no budget was spent).
inline constexpr std::uint16_t kWireUnavailable =
    WireStatusFor(StatusCode::kUnavailable);

/// Reconstructs a typed Status from a wire code + message, so a remote
/// rejection branches exactly like a local one (client code switches on
/// status.code(), never on strings). Unknown codes -- a peer newer than this
/// build -- come back as kInvalidProblem with the raw number preserved in
/// the message.
inline Status StatusFromWire(std::uint16_t wire, std::string message) {
  const std::optional<StatusCode> code = StatusCodeFromWire(wire);
  if (!code.has_value()) {
    return Status::InvalidProblem("unrecognized wire status code " +
                                  std::to_string(wire) + ": " +
                                  std::move(message));
  }
  if (*code == StatusCode::kOk) return Status::Ok();
  return Status::WithCode(*code, std::move(message));
}

}  // namespace net
}  // namespace htdp

#endif  // HTDP_NET_WIRE_STATUS_H_
