#include "net/transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace htdp {
namespace net {
namespace {

constexpr std::size_t kReadChunkBytes = 64 * 1024;

Status Errno(const char* op) {
  return Status::InvalidProblem(std::string(op) + ": " +
                                std::strerror(errno));
}

/// "localhost" convenience alias aside, hosts are IPv4 dotted-quad: the
/// daemon is a loopback/LAN control surface, not a public endpoint.
StatusOr<in_addr> ParseHost(const std::string& host) {
  std::string spelled = host.empty() || host == "localhost"
                            ? std::string("127.0.0.1")
                            : host;
  in_addr addr{};
  if (inet_pton(AF_INET, spelled.c_str(), &addr) != 1) {
    return Status::InvalidProblem("unparseable IPv4 host \"" + host + "\"");
  }
  return addr;
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<UniqueFd> ListenTcp(const std::string& host, std::uint16_t port) {
  StatusOr<in_addr> addr = ParseHost(host);
  HTDP_RETURN_IF_ERROR(addr.status());

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");

  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr = *addr;
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), 64) != 0) return Errno("listen");
  return fd;
}

StatusOr<UniqueFd> DialTcp(const std::string& host, std::uint16_t port) {
  StatusOr<in_addr> addr = ParseHost(host);
  HTDP_RETURN_IF_ERROR(addr.status());

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");

  int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr = *addr;
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect");
  return fd;
}

StatusOr<std::uint16_t> LocalPort(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(sa.sin_port));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

Status SendAll(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<std::size_t>(rc);
  }
  return Status::Ok();
}

StatusOr<std::size_t> RecvSome(int fd, std::uint8_t* out, std::size_t n) {
  while (true) {
    ssize_t rc = ::recv(fd, out, n, 0);
    if (rc >= 0) return static_cast<std::size_t>(rc);
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

void IgnoreSigpipeOnce() {
  static const bool ignored = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)ignored;
}

// ---------------------------------------------------------------------------
// EventLoop

EventLoop::EventLoop(Callbacks callbacks, double idle_timeout_seconds)
    : callbacks_(std::move(callbacks)),
      idle_timeout_seconds_(idle_timeout_seconds) {}

EventLoop::~EventLoop() = default;

Status EventLoop::Init() {
  IgnoreSigpipeOnce();
  int fds[2];
  if (::pipe(fds) != 0) return Errno("pipe");
  wake_read_ = UniqueFd(fds[0]);
  wake_write_ = UniqueFd(fds[1]);
  HTDP_RETURN_IF_ERROR(SetNonBlocking(wake_read_.get()));
  HTDP_RETURN_IF_ERROR(SetNonBlocking(wake_write_.get()));
  return Status::Ok();
}

void EventLoop::SetListener(UniqueFd listener) {
  (void)SetNonBlocking(listener.get());
  listener_ = std::move(listener);
}

void EventLoop::StopAccepting() { listener_.Reset(); }

void EventLoop::AddConnection(UniqueFd fd) {
  (void)SetNonBlocking(fd.get());
  int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int key = fd.get();
  Connection conn;
  conn.fd = std::move(fd);
  conn.last_activity = std::chrono::steady_clock::now();
  connections_.emplace(key, std::move(conn));
}

void EventLoop::Send(int fd, const std::uint8_t* data, std::size_t n) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  it->second.outbox.insert(it->second.outbox.end(), data, data + n);
}

void EventLoop::CloseAfterFlush(int fd, Status reason) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (it->second.outbox.size() == it->second.outbox_offset) {
    Remove(fd, reason);
    return;
  }
  it->second.closing = true;
  it->second.close_reason = std::move(reason);
}

void EventLoop::Close(int fd, Status reason) { Remove(fd, reason); }

void EventLoop::MarkBusy(int fd, bool busy) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  it->second.busy += busy ? 1 : -1;
  if (it->second.busy < 0) it->second.busy = 0;
  if (!busy) it->second.last_activity = std::chrono::steady_clock::now();
}

void EventLoop::Wake() {
  // write(2) is async-signal-safe; the pipe is non-blocking, so a full pipe
  // (wake already pending) is fine to ignore.
  const std::uint8_t byte = 1;
  [[maybe_unused]] ssize_t rc = ::write(wake_write_.get(), &byte, 1);
}

bool EventLoop::AllFlushed() const {
  for (const auto& [fd, conn] : connections_) {
    if (conn.outbox.size() != conn.outbox_offset) return false;
  }
  return true;
}

void EventLoop::Stop() { running_ = false; }

int EventLoop::PollTimeoutMs() const {
  if (idle_timeout_seconds_ <= 0 || connections_.empty()) return 1000;
  // Wake at least often enough to notice the earliest possible expiry.
  const int ms = static_cast<int>(idle_timeout_seconds_ * 1000.0 / 2.0);
  return std::clamp(ms, 10, 1000);
}

void EventLoop::SweepIdle() {
  if (idle_timeout_seconds_ <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> expired;
  for (const auto& [fd, conn] : connections_) {
    if (conn.busy > 0 || conn.closing) continue;
    const double idle =
        std::chrono::duration<double>(now - conn.last_activity).count();
    if (idle >= idle_timeout_seconds_) expired.push_back(fd);
  }
  for (int fd : expired) {
    Remove(fd, Status::DeadlineExceeded("connection idle timeout"));
  }
}

void EventLoop::AcceptPending() {
  while (listener_.valid()) {
    int raw = ::accept(listener_.get(), nullptr, nullptr);
    if (raw < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (no more pending) or a transient accept error
    }
    AddConnection(UniqueFd(raw));
    if (callbacks_.on_accept) callbacks_.on_accept(raw);
  }
}

bool EventLoop::HandleReadable(Connection& conn) {
  std::uint8_t buffer[kReadChunkBytes];
  while (true) {
    ssize_t rc = ::recv(conn.fd.get(), buffer, sizeof(buffer), 0);
    if (rc > 0) {
      conn.last_activity = std::chrono::steady_clock::now();
      if (!conn.closing && callbacks_.on_data) {
        callbacks_.on_data(conn.fd.get(), buffer,
                           static_cast<std::size_t>(rc));
        // The callback may have closed the connection re-entrantly.
        if (connections_.find(conn.fd.get()) == connections_.end()) {
          return false;
        }
      }
      if (rc < static_cast<ssize_t>(sizeof(buffer))) return true;
      continue;
    }
    if (rc == 0) {
      Remove(conn.fd.get(), Status::Ok());  // orderly peer shutdown
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    Remove(conn.fd.get(), Errno("recv"));
    return false;
  }
}

bool EventLoop::HandleWritable(Connection& conn) {
  while (conn.outbox_offset < conn.outbox.size()) {
    ssize_t rc = ::send(conn.fd.get(), conn.outbox.data() + conn.outbox_offset,
                        conn.outbox.size() - conn.outbox_offset, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      Remove(conn.fd.get(), Errno("send"));
      return false;
    }
    conn.outbox_offset += static_cast<std::size_t>(rc);
    conn.last_activity = std::chrono::steady_clock::now();
  }
  if (conn.outbox_offset == conn.outbox.size()) {
    conn.outbox.clear();
    conn.outbox_offset = 0;
    if (conn.closing) {
      Remove(conn.fd.get(), conn.close_reason);
      return false;
    }
  }
  return true;
}

void EventLoop::Remove(int fd, const Status& reason) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  connections_.erase(it);  // closes via UniqueFd
  if (callbacks_.on_close) callbacks_.on_close(fd, reason);
}

Status EventLoop::Run() {
  running_ = true;
  std::vector<pollfd> pfds;
  std::vector<int> conn_fds;
  while (running_) {
    pfds.clear();
    conn_fds.clear();
    pfds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
    if (listener_.valid()) {
      pfds.push_back(pollfd{listener_.get(), POLLIN, 0});
    }
    const std::size_t first_conn = pfds.size();
    for (auto& [fd, conn] : connections_) {
      short events = POLLIN;
      if (conn.outbox_offset < conn.outbox.size()) events |= POLLOUT;
      pfds.push_back(pollfd{fd, events, 0});
      conn_fds.push_back(fd);
    }

    int ready = ::poll(pfds.data(), pfds.size(), PollTimeoutMs());
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }

    // Wake pipe first: drain it, then run the scheduled work.
    if (pfds[0].revents & POLLIN) {
      std::uint8_t sink[64];
      while (::read(wake_read_.get(), sink, sizeof(sink)) > 0) {
      }
      if (callbacks_.on_wake) callbacks_.on_wake();
      if (!running_) break;
    }

    if (listener_.valid() && first_conn == 2 && (pfds[1].revents & POLLIN)) {
      AcceptPending();
    }

    for (std::size_t i = 0; i < conn_fds.size(); ++i) {
      const pollfd& p = pfds[first_conn + i];
      auto it = connections_.find(conn_fds[i]);
      if (it == connections_.end()) continue;  // removed by a callback
      if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Read any final bytes the peer sent before the hangup, then drop.
        if (p.revents & POLLIN) {
          if (!HandleReadable(it->second)) continue;
          it = connections_.find(conn_fds[i]);
          if (it == connections_.end()) continue;
        }
        Remove(conn_fds[i], Status::Ok());
        continue;
      }
      if (p.revents & POLLIN) {
        if (!HandleReadable(it->second)) continue;
        it = connections_.find(conn_fds[i]);
        if (it == connections_.end()) continue;
      }
      if ((p.revents & POLLOUT) ||
          it->second.outbox_offset < it->second.outbox.size()) {
        if (!HandleWritable(it->second)) continue;
      }
    }

    SweepIdle();
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace htdp
