#include "net/transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace htdp {
namespace net {
namespace {

constexpr std::size_t kReadChunkBytes = 64 * 1024;

Status Errno(const char* op) {
  return Status::InvalidProblem(std::string(op) + ": " +
                                std::strerror(errno));
}

/// "localhost" convenience alias aside, hosts are IPv4 dotted-quad: the
/// daemon is a loopback/LAN control surface, not a public endpoint.
StatusOr<in_addr> ParseHost(const std::string& host) {
  std::string spelled = host.empty() || host == "localhost"
                            ? std::string("127.0.0.1")
                            : host;
  in_addr addr{};
  if (inet_pton(AF_INET, spelled.c_str(), &addr) != 1) {
    return Status::InvalidProblem("unparseable IPv4 host \"" + host + "\"");
  }
  return addr;
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<UniqueFd> ListenTcp(const std::string& host, std::uint16_t port) {
  StatusOr<in_addr> addr = ParseHost(host);
  HTDP_RETURN_IF_ERROR(addr.status());

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");

  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr = *addr;
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), 64) != 0) return Errno("listen");
  return fd;
}

StatusOr<UniqueFd> DialTcp(const std::string& host, std::uint16_t port) {
  StatusOr<in_addr> addr = ParseHost(host);
  HTDP_RETURN_IF_ERROR(addr.status());

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");

  int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  sa.sin_addr = *addr;
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect");
  return fd;
}

StatusOr<std::uint16_t> LocalPort(int fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(sa.sin_port));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

Status SendAll(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<std::size_t>(rc);
  }
  return Status::Ok();
}

StatusOr<std::size_t> RecvSome(int fd, std::uint8_t* out, std::size_t n) {
  while (true) {
    ssize_t rc = ::recv(fd, out, n, 0);
    if (rc >= 0) return static_cast<std::size_t>(rc);
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

void IgnoreSigpipeOnce() {
  static const bool ignored = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)ignored;
}

StatusOr<std::unique_ptr<ByteStream>> DialStream(const std::string& host,
                                                 std::uint16_t port) {
  StatusOr<UniqueFd> fd = DialTcp(host, port);
  HTDP_RETURN_IF_ERROR(fd.status());
  return std::unique_ptr<ByteStream>(
      std::make_unique<SocketStream>(std::move(fd).value()));
}

// ---------------------------------------------------------------------------
// FaultInjectingStream

Status FaultInjectingStream::Send(const std::uint8_t* data, std::size_t n) {
  if (severed_) {
    return Status::Unavailable("fault injection: connection already severed");
  }
  switch (DrawFault(plan_, rng_)) {
    case FaultAction::kNone:
      return inner_->Send(data, n);
    case FaultAction::kDrop:
      ++counters_.drops;
      severed_ = true;
      inner_->Close();
      return Status::Unavailable("fault injection: connection dropped");
    case FaultAction::kTruncate: {
      ++counters_.truncates;
      severed_ = true;
      // Deliver a strict prefix, then cut -- the server sees a mid-frame
      // half-open peer (exactly what its read deadline exists to reap).
      const std::size_t prefix = n > 1 ? n / 2 : 0;
      if (prefix > 0) (void)inner_->Send(data, prefix);
      inner_->Close();
      return Status::Unavailable("fault injection: write truncated mid-frame");
    }
    case FaultAction::kPartial: {
      ++counters_.partials;
      // Two separate sends exercise the reassembly path; no data is lost.
      const std::size_t prefix = n > 1 ? n / 2 : n;
      HTDP_RETURN_IF_ERROR(inner_->Send(data, prefix));
      if (prefix < n) {
        return inner_->Send(data + prefix, n - prefix);
      }
      return Status::Ok();
    }
    case FaultAction::kDelay: {
      ++counters_.delays;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(plan_.delay_ms));
      return inner_->Send(data, n);
    }
  }
  return inner_->Send(data, n);
}

StatusOr<std::size_t> FaultInjectingStream::Recv(std::uint8_t* out,
                                                std::size_t n) {
  if (severed_) {
    return Status::Unavailable("fault injection: connection already severed");
  }
  switch (DrawFault(plan_, rng_)) {
    case FaultAction::kDrop:
      ++counters_.drops;
      severed_ = true;
      inner_->Close();
      return Status::Unavailable("fault injection: connection dropped");
    case FaultAction::kTruncate:
      // On the read side a truncation IS an early orderly close: the bytes
      // after the cut never arrive.
      ++counters_.truncates;
      severed_ = true;
      inner_->Close();
      return std::size_t{0};
    case FaultAction::kPartial:
      // A short read: hand back at most one byte so the decoder's
      // incremental paths run.
      ++counters_.partials;
      return inner_->Recv(out, n > 0 ? 1 : 0);
    case FaultAction::kDelay: {
      ++counters_.delays;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(plan_.delay_ms));
      return inner_->Recv(out, n);
    }
    case FaultAction::kNone:
      break;
  }
  return inner_->Recv(out, n);
}

// ---------------------------------------------------------------------------
// EventLoop

EventLoop::EventLoop(Callbacks callbacks, Options options)
    : callbacks_(std::move(callbacks)), options_(std::move(options)) {
  if (options_.fault.has_value() && options_.fault->enabled()) {
    fault_rng_.emplace(options_.fault->seed);
  } else {
    options_.fault.reset();
  }
}

EventLoop::EventLoop(Callbacks callbacks, double idle_timeout_seconds)
    : EventLoop(std::move(callbacks), [idle_timeout_seconds] {
        Options options;
        options.idle_timeout_seconds = idle_timeout_seconds;
        return options;
      }()) {}

EventLoop::~EventLoop() = default;

Status EventLoop::Init() {
  IgnoreSigpipeOnce();
  int fds[2];
  if (::pipe(fds) != 0) return Errno("pipe");
  wake_read_ = UniqueFd(fds[0]);
  wake_write_ = UniqueFd(fds[1]);
  HTDP_RETURN_IF_ERROR(SetNonBlocking(wake_read_.get()));
  HTDP_RETURN_IF_ERROR(SetNonBlocking(wake_write_.get()));
  return Status::Ok();
}

void EventLoop::SetListener(UniqueFd listener) {
  (void)SetNonBlocking(listener.get());
  listener_ = std::move(listener);
}

void EventLoop::StopAccepting() { listener_.Reset(); }

void EventLoop::AddConnection(UniqueFd fd) {
  (void)SetNonBlocking(fd.get());
  int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int key = fd.get();
  Connection conn;
  conn.fd = std::move(fd);
  conn.last_activity = std::chrono::steady_clock::now();
  connections_.emplace(key, std::move(conn));
}

void EventLoop::Send(int fd, const std::uint8_t* data, std::size_t n) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (conn.doomed) return;
  conn.outbox.insert(conn.outbox.end(), data, data + n);
  const std::size_t backlog = conn.outbox.size() - conn.outbox_offset;
  if (options_.max_write_buffer_bytes > 0 &&
      backlog > options_.max_write_buffer_bytes) {
    // Slow-client guard: the peer is not draining its socket, so its
    // backlog would otherwise grow without bound. The close is deferred to
    // the iteration boundary, which keeps Send() safe to call from inside
    // any callback (no re-entrant on_close under the caller's feet).
    DeferClose(conn,
               Status::Unavailable(
                   "slow client: " + std::to_string(backlog) +
                   " un-flushed reply bytes exceed the write-buffer cap of " +
                   std::to_string(options_.max_write_buffer_bytes)));
  }
}

void EventLoop::DeferClose(Connection& conn, Status reason) {
  if (conn.doomed) return;
  conn.doomed = true;
  // The backlog will never be sent; release the memory immediately so the
  // cap bounds usage even before the close lands.
  conn.outbox.clear();
  conn.outbox_offset = 0;
  pending_close_.emplace_back(conn.fd.get(), std::move(reason));
}

void EventLoop::FlushPendingCloses() {
  while (!pending_close_.empty()) {
    std::vector<std::pair<int, Status>> batch;
    batch.swap(pending_close_);
    for (auto& [fd, reason] : batch) Remove(fd, reason);
  }
}

void EventLoop::CloseAfterFlush(int fd, Status reason) {
  auto it = connections_.find(fd);
  if (it == connections_.end() || it->second.doomed) return;
  if (it->second.outbox.size() == it->second.outbox_offset) {
    Remove(fd, reason);
    return;
  }
  it->second.closing = true;
  it->second.close_reason = std::move(reason);
}

void EventLoop::Close(int fd, Status reason) { Remove(fd, reason); }

void EventLoop::MarkBusy(int fd, bool busy) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  it->second.busy += busy ? 1 : -1;
  if (it->second.busy < 0) it->second.busy = 0;
  if (!busy) it->second.last_activity = std::chrono::steady_clock::now();
}

void EventLoop::SetReadDeadline(int fd, double seconds) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (seconds <= 0) {
    it->second.read_deadline.reset();
    return;
  }
  it->second.read_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
}

void EventLoop::Wake() {
  // write(2) is async-signal-safe; the pipe is non-blocking, so a full pipe
  // (wake already pending) is fine to ignore.
  const std::uint8_t byte = 1;
  [[maybe_unused]] ssize_t rc = ::write(wake_write_.get(), &byte, 1);
}

bool EventLoop::AllFlushed() const {
  for (const auto& [fd, conn] : connections_) {
    if (conn.outbox.size() != conn.outbox_offset) return false;
  }
  return true;
}

void EventLoop::Stop() { running_ = false; }

int EventLoop::PollTimeoutMs() const {
  double ms = 1000.0;
  if (options_.idle_timeout_seconds > 0 && !connections_.empty()) {
    // Wake at least often enough to notice the earliest possible expiry.
    ms = std::min(ms, options_.idle_timeout_seconds * 1000.0 / 2.0);
  }
  // Read deadlines and fault write-gates are short and precise: wake when
  // the earliest one is due.
  const auto now = std::chrono::steady_clock::now();
  for (const auto& [fd, conn] : connections_) {
    if (conn.read_deadline) {
      ms = std::min(ms, std::chrono::duration<double, std::milli>(
                            *conn.read_deadline - now)
                            .count());
    }
    if (conn.write_gate) {
      ms = std::min(ms, std::chrono::duration<double, std::milli>(
                            *conn.write_gate - now)
                            .count());
    }
  }
  return std::clamp(static_cast<int>(ms), 1, 1000);
}

void EventLoop::SweepIdle() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::pair<int, Status>> expired;
  for (const auto& [fd, conn] : connections_) {
    if (conn.doomed) continue;
    // Read deadlines fire regardless of busy/closing: a peer that stalled
    // MID-FRAME looks recently-active to the idle heuristic but will never
    // deliver the rest of its frame.
    if (conn.read_deadline && now >= *conn.read_deadline) {
      expired.emplace_back(
          fd, Status::DeadlineExceeded("read deadline: peer stalled mid-frame"));
      continue;
    }
    if (options_.idle_timeout_seconds <= 0) continue;
    if (conn.busy > 0 || conn.closing) continue;
    const double idle =
        std::chrono::duration<double>(now - conn.last_activity).count();
    if (idle >= options_.idle_timeout_seconds) {
      expired.emplace_back(
          fd, Status::DeadlineExceeded("connection idle timeout"));
    }
  }
  for (auto& [fd, reason] : expired) Remove(fd, reason);
}

void EventLoop::AcceptPending() {
  while (listener_.valid()) {
    int raw = ::accept(listener_.get(), nullptr, nullptr);
    if (raw < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (no more pending) or a transient accept error
    }
    AddConnection(UniqueFd(raw));
    if (callbacks_.on_accept) callbacks_.on_accept(raw);
  }
}

bool EventLoop::HandleReadable(Connection& conn) {
  std::uint8_t buffer[kReadChunkBytes];
  while (true) {
    ssize_t rc = ::recv(conn.fd.get(), buffer, sizeof(buffer), 0);
    if (rc > 0) {
      conn.last_activity = std::chrono::steady_clock::now();
      if (!conn.closing && !conn.doomed && callbacks_.on_data) {
        callbacks_.on_data(conn.fd.get(), buffer,
                           static_cast<std::size_t>(rc));
        // The callback may have closed the connection re-entrantly.
        if (connections_.find(conn.fd.get()) == connections_.end()) {
          return false;
        }
      }
      if (rc < static_cast<ssize_t>(sizeof(buffer))) return true;
      continue;
    }
    if (rc == 0) {
      Remove(conn.fd.get(), Status::Ok());  // orderly peer shutdown
      return false;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    Remove(conn.fd.get(), Errno("recv"));
    return false;
  }
}

bool EventLoop::ApplyWriteFault(Connection& conn) {
  if (!fault_rng_ || conn.fault_drawn) return true;
  if (conn.outbox_offset >= conn.outbox.size()) return true;
  conn.fault_drawn = true;
  const std::size_t pending = conn.outbox.size() - conn.outbox_offset;
  switch (DrawFault(*options_.fault, *fault_rng_)) {
    case FaultAction::kNone:
      return true;
    case FaultAction::kDrop:
      ++fault_counters_.drops;
      Remove(conn.fd.get(),
             Status::Unavailable("fault injection: connection dropped"));
      return false;
    case FaultAction::kTruncate: {
      ++fault_counters_.truncates;
      const std::size_t cut = conn.outbox_offset + pending / 2;
      if (cut <= conn.outbox_offset) {
        Remove(conn.fd.get(),
               Status::Unavailable("fault injection: write truncated"));
        return false;
      }
      conn.flush_limit = cut;
      conn.close_at_limit = true;
      return true;
    }
    case FaultAction::kPartial:
      ++fault_counters_.partials;
      conn.flush_limit = conn.outbox_offset + (pending > 1 ? pending / 2 : 1);
      conn.close_at_limit = false;
      return true;
    case FaultAction::kDelay:
      ++fault_counters_.delays;
      conn.write_gate =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(
                  options_.fault->delay_ms));
      return true;
  }
  return true;
}

bool EventLoop::HandleWritable(Connection& conn) {
  if (conn.doomed) return true;
  if (!ApplyWriteFault(conn)) return false;
  if (conn.write_gate) {
    if (std::chrono::steady_clock::now() < *conn.write_gate) return true;
    conn.write_gate.reset();
  }
  while (conn.outbox_offset < conn.outbox.size()) {
    std::size_t want = conn.outbox.size() - conn.outbox_offset;
    if (conn.flush_limit > 0) {
      if (conn.outbox_offset >= conn.flush_limit) break;
      want = std::min(want, conn.flush_limit - conn.outbox_offset);
    }
    ssize_t rc = ::send(conn.fd.get(), conn.outbox.data() + conn.outbox_offset,
                        want, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      Remove(conn.fd.get(), Errno("send"));
      return false;
    }
    conn.outbox_offset += static_cast<std::size_t>(rc);
    conn.last_activity = std::chrono::steady_clock::now();
  }
  if (conn.flush_limit > 0 && conn.outbox_offset >= conn.flush_limit) {
    if (conn.close_at_limit) {
      Remove(conn.fd.get(),
             Status::Unavailable("fault injection: write truncated mid-frame"));
      return false;
    }
    // Partial-write fault: the rest of the batch goes on a later flush.
    conn.flush_limit = 0;
    return true;
  }
  if (conn.outbox_offset == conn.outbox.size()) {
    conn.outbox.clear();
    conn.outbox_offset = 0;
    conn.fault_drawn = false;
    conn.flush_limit = 0;
    if (conn.closing) {
      Remove(conn.fd.get(), conn.close_reason);
      return false;
    }
  }
  return true;
}

void EventLoop::Remove(int fd, const Status& reason) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  connections_.erase(it);  // closes via UniqueFd
  if (callbacks_.on_close) callbacks_.on_close(fd, reason);
}

Status EventLoop::Run() {
  running_ = true;
  // Single-event-loop visibility (ROADMAP "Net state"): how long the loop
  // blocks in poll(2), how long one service pass takes, and how much is
  // buffered toward slow clients -- the numbers that answer whether one
  // loop thread can carry the connection count it is given.
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  obs::Gauge* poll_wait_gauge = registry.GetGauge(
      "htdp_event_loop_poll_seconds", "Duration of the last poll(2) wait");
  obs::Gauge* service_gauge =
      registry.GetGauge("htdp_event_loop_service_seconds",
                        "Duration of the last post-poll service pass");
  obs::Gauge* conn_gauge = registry.GetGauge("htdp_net_connections",
                                             "Open connections on the loop");
  obs::Gauge* buffered_gauge =
      registry.GetGauge("htdp_net_write_buffer_bytes",
                        "Unflushed outbox bytes across all connections");
  obs::Gauge* buffered_max_gauge =
      registry.GetGauge("htdp_net_write_buffer_max_bytes",
                        "Largest single-connection unflushed outbox");
  std::vector<pollfd> pfds;
  std::vector<int> conn_fds;
  while (running_) {
    pfds.clear();
    conn_fds.clear();
    pfds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
    if (listener_.valid()) {
      pfds.push_back(pollfd{listener_.get(), POLLIN, 0});
    }
    const std::size_t first_conn = pfds.size();
    const auto arm_now = std::chrono::steady_clock::now();
    std::size_t buffered_total = 0;
    std::size_t buffered_max = 0;
    for (auto& [fd, conn] : connections_) {
      short events = POLLIN;
      const std::size_t backlog = conn.outbox.size() - conn.outbox_offset;
      buffered_total += backlog;
      buffered_max = std::max(buffered_max, backlog);
      if (backlog > 0 &&
          (!conn.write_gate || arm_now >= *conn.write_gate)) {
        events |= POLLOUT;
      }
      pfds.push_back(pollfd{fd, events, 0});
      conn_fds.push_back(fd);
    }
    conn_gauge->Set(static_cast<double>(connections_.size()));
    buffered_gauge->Set(static_cast<double>(buffered_total));
    buffered_max_gauge->Set(static_cast<double>(buffered_max));

    const std::uint64_t poll_start_ns = obs::NowNanos();
    int ready = ::poll(pfds.data(), pfds.size(), PollTimeoutMs());
    const std::uint64_t poll_end_ns = obs::NowNanos();
    poll_wait_gauge->Set(static_cast<double>(poll_end_ns - poll_start_ns) *
                         1e-9);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }

    // Wake pipe first: drain it, then run the scheduled work.
    if (pfds[0].revents & POLLIN) {
      std::uint8_t sink[64];
      while (::read(wake_read_.get(), sink, sizeof(sink)) > 0) {
      }
      if (callbacks_.on_wake) callbacks_.on_wake();
      if (!running_) break;
    }

    if (listener_.valid() && first_conn == 2 && (pfds[1].revents & POLLIN)) {
      AcceptPending();
    }

    for (std::size_t i = 0; i < conn_fds.size(); ++i) {
      const pollfd& p = pfds[first_conn + i];
      auto it = connections_.find(conn_fds[i]);
      if (it == connections_.end()) continue;  // removed by a callback
      if (it->second.doomed) continue;         // close pending
      if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Read any final bytes the peer sent before the hangup, then drop.
        if (p.revents & POLLIN) {
          if (!HandleReadable(it->second)) continue;
          it = connections_.find(conn_fds[i]);
          if (it == connections_.end()) continue;
        }
        Remove(conn_fds[i], Status::Ok());
        continue;
      }
      if (p.revents & POLLIN) {
        if (!HandleReadable(it->second)) continue;
        it = connections_.find(conn_fds[i]);
        if (it == connections_.end() || it->second.doomed) continue;
      }
      if ((p.revents & POLLOUT) ||
          it->second.outbox_offset < it->second.outbox.size()) {
        if (!HandleWritable(it->second)) continue;
      }
    }

    FlushPendingCloses();
    SweepIdle();
    service_gauge->Set(static_cast<double>(obs::NowNanos() - poll_end_ns) *
                       1e-9);
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace htdp
