#ifndef HTDP_NET_CLIENT_H_
#define HTDP_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/fit_result.h"
#include "net/codec.h"
#include "net/serialize.h"
#include "net/transport.h"
#include "util/status.h"

namespace htdp {
namespace net {

/// ## net::Client -- the library face of the htdpd protocol
///
/// One Client is one connection. htdpctl's subcommands, the loopback tests
/// and the BM_DaemonRoundTrip bench all drive the daemon through this class,
/// so the wire logic exists in exactly one place on the client side.
///
/// Every remote failure comes back as the same typed Status the in-process
/// API would have produced (wire_status.h reconstructs the code), so calling
/// code branches on status.code() identically for local and remote fits.
///
/// Blocking and single-threaded: one request is in flight at a time. Frames
/// the server pushes for streamed jobs (JOB_STATE / RESULT_CHUNK /
/// RESULT_END) are absorbed whenever the client is reading and replayed by
/// AwaitStreamed, so interleaving streamed submits with polls on one
/// connection works.
class Client {
 public:
  /// Dials host:port. The returned client owns the connection.
  static StatusOr<std::unique_ptr<Client>> Connect(
      const std::string& host, std::uint16_t port,
      std::size_t max_payload = kDefaultMaxPayloadBytes);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// SUBMIT -> job id, or the typed rejection (kBudgetExhausted for an
  /// over-budget tenant, kUnknownSolver, kInvalidProblem, ...).
  StatusOr<std::uint64_t> Submit(const SubmitRequest& request);

  /// POLL -> the job's state. With deliver=true a done-ok job's result
  /// frames follow the reply and are retained for FetchResult/WaitResult.
  StatusOr<JobStateMsg> Poll(std::uint64_t job_id, bool deliver);

  /// Polls until the job completes, then returns its FitResult (done-ok) or
  /// the carried typed error (done-error, e.g. kCancelled).
  StatusOr<FitResult> WaitResult(std::uint64_t job_id);

  /// For a job submitted with stream=true: blocks on the pushed frames
  /// (no polling) and returns the result or carried error.
  StatusOr<FitResult> AwaitStreamed(std::uint64_t job_id);

  /// CANCEL -> the job's resulting state (kDoneError/kCancelled if the
  /// cancel landed; done-ok if the job had already finished).
  StatusOr<JobStateMsg> Cancel(std::uint64_t job_id);

  StatusOr<StatsReply> Stats();
  StatusOr<SolverListReply> ListSolvers();

 private:
  Client(UniqueFd fd, std::size_t max_payload)
      : fd_(std::move(fd)), max_payload_(max_payload), decoder_(max_payload) {}

  Status SendFrame(FrameType type, const std::vector<std::uint8_t>& payload);
  /// Blocks for the next frame (pushes included).
  StatusOr<Frame> ReadFrame();
  /// Blocks for the reply to the outstanding request, absorbing pushed
  /// frames. `expect_job` disambiguates a JOB_STATE reply from a pushed
  /// JOB_STATE of some other streamed job (0 = no job-scoped reply).
  StatusOr<Frame> ReadReply(std::uint64_t expect_job);
  /// Files a pushed frame into the assembly/completion maps. Returns the
  /// decode error for a malformed push.
  Status AbsorbPush(const Frame& frame);
  /// Reads frames until job_id's result bytes are complete, then decodes.
  StatusOr<FitResult> CollectResult(std::uint64_t job_id);

  UniqueFd fd_;
  std::size_t max_payload_;
  FrameDecoder decoder_;
  std::set<std::uint64_t> streamed_;  // jobs submitted with stream=true
  std::map<std::uint64_t, std::vector<std::uint8_t>> assembling_;
  std::map<std::uint64_t, std::vector<std::uint8_t>> finished_;
  std::map<std::uint64_t, JobStateMsg> pushed_states_;
};

}  // namespace net
}  // namespace htdp

#endif  // HTDP_NET_CLIENT_H_
