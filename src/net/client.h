#ifndef HTDP_NET_CLIENT_H_
#define HTDP_NET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/fit_result.h"
#include "net/codec.h"
#include "net/serialize.h"
#include "net/transport.h"
#include "util/status.h"

namespace htdp {
namespace net {

/// ## net::Client -- the library face of the htdpd protocol
///
/// One Client is one connection. htdpctl's subcommands, the loopback tests
/// and the BM_DaemonRoundTrip bench all drive the daemon through this class,
/// so the wire logic exists in exactly one place on the client side.
///
/// Every remote failure comes back as the same typed Status the in-process
/// API would have produced (wire_status.h reconstructs the code), so calling
/// code branches on status.code() identically for local and remote fits.
///
/// Blocking and single-threaded: one request is in flight at a time. Frames
/// the server pushes for streamed jobs (JOB_STATE / RESULT_CHUNK /
/// RESULT_END) are absorbed whenever the client is reading and replayed by
/// AwaitStreamed, so interleaving streamed submits with polls on one
/// connection works.
///
/// Resilience: transport-level failures (connection refused mid-dial, peer
/// reset, server closed mid-conversation) surface as kUnavailable -- the
/// retryable class -- and mark the connection broken;
/// SubmitAndWaitWithRetry reconnects and resubmits under a RetryPolicy.
/// Retrying a fit is safe by construction: fits are bit-deterministic at a
/// fixed seed, so a resubmission returns the identical result.

/// Deterministic client backoff schedule. All knobs are plain data so the
/// chaos tests, htdpctl --retry and the bench share one policy shape.
struct RetryPolicy {
  /// Total attempts (first try included); <= 0 = unlimited (bounded only
  /// by deadline_seconds).
  int max_attempts = 8;
  double initial_backoff_ms = 25.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 2000.0;
  /// Wall-clock cap over ALL attempts and waits; 0 = none.
  double deadline_seconds = 0.0;
  /// Seeds the deterministic jitter stream (net/fault.h FaultRng), so a
  /// retry schedule replays exactly under test.
  std::uint64_t jitter_seed = 0;
};

/// Attempt `attempt`'s wait (attempt 0 = wait before the first retry) in
/// milliseconds: exponential base capped at max_backoff_ms, raised to the
/// server's retry_after_ms hint when that is larger, then jittered to
/// [50%, 100%] by the deterministic stream. Pure given the rng state.
double RetryBackoffMs(const RetryPolicy& policy, int attempt,
                      std::uint32_t server_hint_ms, FaultRng& jitter);

class Client {
 public:
  /// Dials host:port. The returned client owns the connection.
  static StatusOr<std::unique_ptr<Client>> Connect(
      const std::string& host, std::uint16_t port,
      std::size_t max_payload = kDefaultMaxPayloadBytes);

  /// Produces the connection's ByteStream -- called once per (re)connect.
  /// The chaos harness hands in a factory that wraps the socket in a
  /// FaultInjectingStream.
  using StreamFactory =
      std::function<StatusOr<std::unique_ptr<ByteStream>>()>;

  /// Connects through `factory`; Reconnect() calls it again.
  static StatusOr<std::unique_ptr<Client>> ConnectWith(
      StreamFactory factory,
      std::size_t max_payload = kDefaultMaxPayloadBytes);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// SUBMIT -> job id, or the typed rejection (kBudgetExhausted for an
  /// over-budget tenant, kUnknownSolver, kInvalidProblem, ...).
  StatusOr<std::uint64_t> Submit(const SubmitRequest& request);

  /// POLL -> the job's state. With deliver=true a done-ok job's result
  /// frames follow the reply and are retained for FetchResult/WaitResult.
  StatusOr<JobStateMsg> Poll(std::uint64_t job_id, bool deliver);

  /// Polls until the job completes, then returns its FitResult (done-ok) or
  /// the carried typed error (done-error, e.g. kCancelled).
  StatusOr<FitResult> WaitResult(std::uint64_t job_id);

  /// For a job submitted with stream=true: blocks on the pushed frames
  /// (no polling) and returns the result or carried error.
  StatusOr<FitResult> AwaitStreamed(std::uint64_t job_id);

  /// CANCEL -> the job's resulting state (kDoneError/kCancelled if the
  /// cancel landed; done-ok if the job had already finished).
  StatusOr<JobStateMsg> Cancel(std::uint64_t job_id);

  StatusOr<StatsReply> Stats();
  StatusOr<SolverListReply> ListSolvers();

  /// BUDGET -> the privacy-budget ledger: per-tenant spend with two-phase
  /// reservation counters plus the daemon's durability/recovery state.
  StatusOr<BudgetReply> Budget();

  /// METRICS -> an observability export in the requested format: the
  /// metrics registry as JSON or Prometheus text, or the span collector's
  /// Chrome-trace JSON (kTraceChrome).
  StatusOr<MetricsReply> Metrics(MetricsFormat format);

  /// Submit + wait (streamed or polled per request.stream), retrying
  /// kUnavailable outcomes -- overload shedding AND transport failures --
  /// under `policy`: exponential backoff with deterministic jitter,
  /// honoring the server's retry_after_ms hint, reconnecting when the
  /// connection broke. Non-retryable errors return immediately.
  StatusOr<FitResult> SubmitAndWaitWithRetry(const SubmitRequest& request,
                                             const RetryPolicy& policy);

  /// Tears down the current stream and dials a fresh one via the factory,
  /// resetting all per-connection protocol state. The job-id namespace is
  /// per-daemon, not per-connection, so ids from before survive a
  /// reconnect (but parked deliver-polls do not -- re-poll after).
  Status Reconnect();

  /// True after a transport failure; the next SubmitAndWaitWithRetry
  /// attempt reconnects first. Requests on a broken client fail fast with
  /// kUnavailable.
  bool connection_broken() const { return broken_; }

  /// The retry_after_ms hint of the most recent ERROR frame (0 = none).
  std::uint32_t last_retry_after_ms() const { return last_retry_after_ms_; }

  /// Retries SubmitAndWaitWithRetry performed over this client's lifetime
  /// (attempts beyond each first try). The bench reports this.
  std::size_t retries_used() const { return retries_used_; }

  /// Job id of the most recent successful SUBMIT (0 = none yet). After a
  /// SubmitAndWaitWithRetry this is the id of the attempt that completed.
  std::uint64_t last_job_id() const { return last_job_id_; }

 private:
  Client(std::unique_ptr<ByteStream> stream, StreamFactory factory,
         std::size_t max_payload)
      : stream_(std::move(stream)),
        factory_(std::move(factory)),
        max_payload_(max_payload),
        decoder_(max_payload) {}

  Status SendFrame(FrameType type, const std::vector<std::uint8_t>& payload);
  /// Blocks for the next frame (pushes included).
  StatusOr<Frame> ReadFrame();
  /// Blocks for the reply to the outstanding request, absorbing pushed
  /// frames. `expect_job` disambiguates a JOB_STATE reply from a pushed
  /// JOB_STATE of some other streamed job (0 = no job-scoped reply).
  StatusOr<Frame> ReadReply(std::uint64_t expect_job);
  /// Files a pushed frame into the assembly/completion maps. Returns the
  /// decode error for a malformed push.
  Status AbsorbPush(const Frame& frame);
  /// Reads frames until job_id's result bytes are complete, then decodes.
  StatusOr<FitResult> CollectResult(std::uint64_t job_id);
  /// Decodes an ERROR frame, recording its retry_after_ms hint, and
  /// returns the typed Status it carries.
  Status ErrorFromFrame(const Frame& frame);
  /// Marks the connection broken and wraps a transport error as
  /// kUnavailable (retryable: the daemon is fine, the wire is not).
  Status MarkBroken(Status transport_error);

  std::unique_ptr<ByteStream> stream_;
  StreamFactory factory_;  // Connect() installs a re-dialing factory
  std::size_t max_payload_;
  FrameDecoder decoder_;
  bool broken_ = false;
  std::uint32_t last_retry_after_ms_ = 0;
  std::size_t retries_used_ = 0;
  std::uint64_t last_job_id_ = 0;
  std::set<std::uint64_t> streamed_;  // jobs submitted with stream=true
  std::map<std::uint64_t, std::vector<std::uint8_t>> assembling_;
  std::map<std::uint64_t, std::vector<std::uint8_t>> finished_;
  std::map<std::uint64_t, JobStateMsg> pushed_states_;
};

}  // namespace net
}  // namespace htdp

#endif  // HTDP_NET_CLIENT_H_
