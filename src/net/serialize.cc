#include "net/serialize.h"

#include <cstddef>
#include <cmath>
#include <utility>

#include "losses/biweight_loss.h"
#include "losses/huber_loss.h"
#include "losses/logistic_loss.h"
#include "losses/mean_loss.h"
#include "losses/squared_loss.h"

namespace htdp {
namespace net {
namespace {

/// Reads a run of `count` raw doubles into `out` after checking the bytes
/// are actually present (no allocation driven by an unvalidated count).
Status ReadDoubles(WireReader& r, std::size_t count, double* out,
                   const char* what) {
  for (std::size_t i = 0; i < count; ++i) {
    HTDP_RETURN_IF_ERROR(r.F64(out + i, what));
  }
  return Status::Ok();
}

Status DecodeEnumByte(WireReader& r, std::uint8_t max_value, std::uint8_t* out,
                      const char* what) {
  HTDP_RETURN_IF_ERROR(r.U8(out, what));
  if (*out > max_value) {
    return Status::InvalidProblem(std::string("out-of-range value for ") +
                                  what);
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// WireProblem

void EncodeWireProblem(WireWriter& w, const WireProblem& problem) {
  w.Str(problem.loss);
  w.F64(problem.loss_param);
  w.U8(static_cast<std::uint8_t>(problem.constraint));
  w.F64(problem.constraint_radius);
  w.U64(problem.prefix);
  w.U64(problem.target_sparsity);
  w.F64Vec(problem.w0);
  // Dataset: dimensions first, then the row-major feature block and the
  // labels as raw doubles (the counts are implied by n and d; repeating them
  // would just create a second length field that could disagree).
  w.U64(static_cast<std::uint64_t>(problem.data.size()));
  w.U64(static_cast<std::uint64_t>(problem.data.dim()));
  for (double v : problem.data.x.data()) w.F64(v);
  for (double v : problem.data.y) w.F64(v);
}

Status DecodeWireProblem(WireReader& r, WireProblem* out) {
  HTDP_RETURN_IF_ERROR(r.Str(&out->loss, "problem.loss"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->loss_param, "problem.loss_param"));
  std::uint8_t constraint = 0;
  HTDP_RETURN_IF_ERROR(
      DecodeEnumByte(r, 2, &constraint, "problem.constraint"));
  out->constraint = static_cast<WireConstraint>(constraint);
  HTDP_RETURN_IF_ERROR(r.F64(&out->constraint_radius, "problem.radius"));
  HTDP_RETURN_IF_ERROR(r.U64(&out->prefix, "problem.prefix"));
  HTDP_RETURN_IF_ERROR(
      r.U64(&out->target_sparsity, "problem.target_sparsity"));
  HTDP_RETURN_IF_ERROR(r.F64Vec(&out->w0, "problem.w0"));

  std::uint64_t n = 0;
  std::uint64_t d = 0;
  HTDP_RETURN_IF_ERROR(r.U64(&n, "dataset.n"));
  HTDP_RETURN_IF_ERROR(r.U64(&d, "dataset.d"));
  // Validate the declared geometry against the bytes actually present
  // BEFORE allocating n*d doubles: a corrupted length cannot force a huge
  // allocation or an integer-overflowed one.
  const std::uint64_t budget = r.remaining() / 8;
  if (n > budget || d > budget || (n != 0 && d > budget / n) ||
      n * d + n > budget) {
    return Status::InvalidProblem("truncated payload reading dataset values");
  }
  out->data.x = Matrix(static_cast<std::size_t>(n),
                       static_cast<std::size_t>(d));
  HTDP_RETURN_IF_ERROR(ReadDoubles(r, static_cast<std::size_t>(n * d),
                                   out->data.x.data().data(), "dataset.x"));
  out->data.y.resize(static_cast<std::size_t>(n));
  HTDP_RETURN_IF_ERROR(ReadDoubles(r, static_cast<std::size_t>(n),
                                   out->data.y.data(), "dataset.y"));
  return Status::Ok();
}

StatusOr<std::unique_ptr<ProblemHolder>> ProblemHolder::Materialize(
    WireProblem wp) {
  std::unique_ptr<ProblemHolder> holder(new ProblemHolder());
  holder->data_ = std::move(wp.data);

  if (wp.loss == kWireLossSquared) {
    holder->loss_ = std::make_unique<SquaredLoss>();
  } else if (wp.loss == kWireLossLogistic) {
    holder->loss_ = std::make_unique<LogisticLoss>(wp.loss_param);
  } else if (wp.loss == kWireLossHuber) {
    holder->loss_ = std::make_unique<HuberLoss>(wp.loss_param);
  } else if (wp.loss == kWireLossBiweight) {
    holder->loss_ = std::make_unique<BiweightLoss>(wp.loss_param);
  } else if (wp.loss == kWireLossMean) {
    holder->loss_ = std::make_unique<MeanLoss>();
  } else if (!wp.loss.empty()) {
    return Status::InvalidProblem(
        "unknown wire loss \"" + wp.loss +
        "\" (known: squared, logistic, huber, biweight, mean)");
  }

  switch (wp.constraint) {
    case WireConstraint::kNone:
      break;
    case WireConstraint::kL1Ball:
      if (!(wp.constraint_radius > 0.0) ||
          !std::isfinite(wp.constraint_radius)) {
        return Status::InvalidProblem(
            "l1-ball constraint radius must be positive and finite");
      }
      holder->constraint_ =
          std::make_unique<L1Ball>(holder->data_.dim(), wp.constraint_radius);
      break;
    case WireConstraint::kSimplex:
      holder->constraint_ =
          std::make_unique<ProbabilitySimplex>(holder->data_.dim());
      break;
  }

  holder->problem_.loss = holder->loss_.get();
  holder->problem_.data = &holder->data_;
  holder->problem_.constraint = holder->constraint_.get();
  holder->problem_.prefix = static_cast<std::size_t>(wp.prefix);
  holder->problem_.target_sparsity =
      static_cast<std::size_t>(wp.target_sparsity);
  holder->problem_.w0 = std::move(wp.w0);
  return StatusOr<std::unique_ptr<ProblemHolder>>(std::move(holder));
}

// ---------------------------------------------------------------------------
// SolverSpec

void EncodeSpec(WireWriter& w, const SolverSpec& spec) {
  w.F64(spec.budget.epsilon);
  w.F64(spec.budget.delta);
  w.U8(static_cast<std::uint8_t>(spec.accounting));
  w.I32(spec.iterations);
  w.F64(spec.scale);
  w.F64(spec.shrinkage);
  w.U64(static_cast<std::uint64_t>(spec.sparsity));
  w.I32(spec.sparsity_multiplier);
  w.F64(spec.beta);
  w.F64(spec.tau);
  w.F64(spec.zeta);
  w.F64(spec.step);
  w.Bool(spec.diminishing_step);
  w.F64(spec.fixed_step);
  w.U8(static_cast<std::uint8_t>(spec.projection));
  w.F64(spec.radius);
  w.Bool(spec.vector_noise_fill);
  w.U8(static_cast<std::uint8_t>(spec.simd));
  w.Bool(spec.simd_select);
  w.Bool(spec.record_risk_trace);
}

Status DecodeSpec(WireReader& r, SolverSpec* out) {
  HTDP_RETURN_IF_ERROR(r.F64(&out->budget.epsilon, "spec.budget.epsilon"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->budget.delta, "spec.budget.delta"));
  std::uint8_t accounting = 0;
  HTDP_RETURN_IF_ERROR(DecodeEnumByte(r, 2, &accounting, "spec.accounting"));
  out->accounting = static_cast<Accounting>(accounting);
  HTDP_RETURN_IF_ERROR(r.I32(&out->iterations, "spec.iterations"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->scale, "spec.scale"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->shrinkage, "spec.shrinkage"));
  std::uint64_t sparsity = 0;
  HTDP_RETURN_IF_ERROR(r.U64(&sparsity, "spec.sparsity"));
  out->sparsity = static_cast<std::size_t>(sparsity);
  HTDP_RETURN_IF_ERROR(
      r.I32(&out->sparsity_multiplier, "spec.sparsity_multiplier"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->beta, "spec.beta"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->tau, "spec.tau"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->zeta, "spec.zeta"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->step, "spec.step"));
  HTDP_RETURN_IF_ERROR(r.Bool(&out->diminishing_step, "spec.diminishing"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->fixed_step, "spec.fixed_step"));
  std::uint8_t projection = 0;
  HTDP_RETURN_IF_ERROR(DecodeEnumByte(r, 2, &projection, "spec.projection"));
  out->projection = static_cast<PgdOptions::Projection>(projection);
  HTDP_RETURN_IF_ERROR(r.F64(&out->radius, "spec.radius"));
  HTDP_RETURN_IF_ERROR(
      r.Bool(&out->vector_noise_fill, "spec.vector_noise_fill"));
  std::uint8_t simd = 0;
  HTDP_RETURN_IF_ERROR(DecodeEnumByte(r, 2, &simd, "spec.simd"));
  out->simd = static_cast<SimdMode>(simd);
  HTDP_RETURN_IF_ERROR(r.Bool(&out->simd_select, "spec.simd_select"));
  HTDP_RETURN_IF_ERROR(
      r.Bool(&out->record_risk_trace, "spec.record_risk_trace"));
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// FitResult

void EncodeFitResult(WireWriter& w, const FitResult& result) {
  w.F64Vec(result.w);
  w.I32(result.iterations);
  w.F64(result.scale_used);
  w.F64(result.shrinkage_used);
  w.U64(static_cast<std::uint64_t>(result.sparsity_used));
  std::vector<std::uint64_t> selected;
  selected.reserve(result.selected.size());
  for (std::size_t index : result.selected) {
    selected.push_back(static_cast<std::uint64_t>(index));
  }
  w.U64Vec(selected);
  w.F64Vec(result.risk_trace);
  w.F64(result.seconds);
  // The ledger travels whole: the remote caller gets the same audit trail an
  // in-process TryFit would have handed back, composed by the same backend.
  w.U8(static_cast<std::uint8_t>(result.ledger.accounting()));
  w.F64(result.ledger.conversion_delta());
  w.U32(static_cast<std::uint32_t>(result.ledger.entries().size()));
  for (const PrivacyLedger::Entry& entry : result.ledger.entries()) {
    w.Str(entry.mechanism);
    w.F64(entry.epsilon);
    w.F64(entry.delta);
    w.F64(entry.sensitivity);
    w.I32(entry.fold);
    w.F64(entry.rho);
  }
}

Status DecodeFitResult(WireReader& r, FitResult* out) {
  HTDP_RETURN_IF_ERROR(r.F64Vec(&out->w, "result.w"));
  HTDP_RETURN_IF_ERROR(r.I32(&out->iterations, "result.iterations"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->scale_used, "result.scale_used"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->shrinkage_used, "result.shrinkage_used"));
  std::uint64_t sparsity_used = 0;
  HTDP_RETURN_IF_ERROR(r.U64(&sparsity_used, "result.sparsity_used"));
  out->sparsity_used = static_cast<std::size_t>(sparsity_used);
  std::vector<std::uint64_t> selected;
  HTDP_RETURN_IF_ERROR(r.U64Vec(&selected, "result.selected"));
  out->selected.assign(selected.begin(), selected.end());
  HTDP_RETURN_IF_ERROR(r.F64Vec(&out->risk_trace, "result.risk_trace"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->seconds, "result.seconds"));

  std::uint8_t accounting = 0;
  HTDP_RETURN_IF_ERROR(
      DecodeEnumByte(r, 2, &accounting, "result.ledger.accounting"));
  double conversion_delta = 0.0;
  HTDP_RETURN_IF_ERROR(
      r.F64(&conversion_delta, "result.ledger.conversion_delta"));
  std::uint32_t entries = 0;
  HTDP_RETURN_IF_ERROR(r.U32(&entries, "result.ledger.entries"));
  out->ledger.Clear();
  // No reserve from the untrusted count: each loop iteration consumes at
  // least 40 payload bytes, so the loop -- and the growth of the log -- is
  // bounded by the bytes actually present.
  for (std::uint32_t i = 0; i < entries; ++i) {
    PrivacyLedger::Entry entry;
    HTDP_RETURN_IF_ERROR(r.Str(&entry.mechanism, "ledger.mechanism"));
    HTDP_RETURN_IF_ERROR(r.F64(&entry.epsilon, "ledger.epsilon"));
    HTDP_RETURN_IF_ERROR(r.F64(&entry.delta, "ledger.delta"));
    HTDP_RETURN_IF_ERROR(r.F64(&entry.sensitivity, "ledger.sensitivity"));
    HTDP_RETURN_IF_ERROR(r.I32(&entry.fold, "ledger.fold"));
    HTDP_RETURN_IF_ERROR(r.F64(&entry.rho, "ledger.rho"));
    out->ledger.Record(std::move(entry));
  }
  out->ledger.SetAccounting(static_cast<Accounting>(accounting),
                            conversion_delta);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Requests / replies

void EncodeSubmit(WireWriter& w, const SubmitRequest& request) {
  w.Str(request.tenant);
  w.Str(request.solver);
  w.Str(request.tag);
  w.U64(request.seed);
  w.F64(request.deadline_seconds);
  w.Bool(request.stream);
  EncodeSpec(w, request.spec);
  EncodeWireProblem(w, request.problem);
}

Status DecodeSubmit(WireReader& r, SubmitRequest* out) {
  HTDP_RETURN_IF_ERROR(r.Str(&out->tenant, "submit.tenant"));
  HTDP_RETURN_IF_ERROR(r.Str(&out->solver, "submit.solver"));
  HTDP_RETURN_IF_ERROR(r.Str(&out->tag, "submit.tag"));
  HTDP_RETURN_IF_ERROR(r.U64(&out->seed, "submit.seed"));
  HTDP_RETURN_IF_ERROR(r.F64(&out->deadline_seconds, "submit.deadline"));
  HTDP_RETURN_IF_ERROR(r.Bool(&out->stream, "submit.stream"));
  HTDP_RETURN_IF_ERROR(DecodeSpec(r, &out->spec));
  HTDP_RETURN_IF_ERROR(DecodeWireProblem(r, &out->problem));
  return Status::Ok();
}

void EncodeSubmitOk(WireWriter& w, const SubmitOk& msg) { w.U64(msg.job_id); }

Status DecodeSubmitOk(WireReader& r, SubmitOk* out) {
  return r.U64(&out->job_id, "submit_ok.job_id");
}

void EncodePoll(WireWriter& w, const PollRequest& request) {
  w.U64(request.job_id);
  w.Bool(request.deliver);
}

Status DecodePoll(WireReader& r, PollRequest* out) {
  HTDP_RETURN_IF_ERROR(r.U64(&out->job_id, "poll.job_id"));
  HTDP_RETURN_IF_ERROR(r.Bool(&out->deliver, "poll.deliver"));
  return Status::Ok();
}

void EncodeJobState(WireWriter& w, const JobStateMsg& msg) {
  w.U64(msg.job_id);
  w.U8(static_cast<std::uint8_t>(msg.state));
  w.U16(msg.wire_code);
  w.Str(msg.message);
}

Status DecodeJobState(WireReader& r, JobStateMsg* out) {
  HTDP_RETURN_IF_ERROR(r.U64(&out->job_id, "job_state.job_id"));
  std::uint8_t state = 0;
  HTDP_RETURN_IF_ERROR(r.U8(&state, "job_state.state"));
  if (state != 0 && state != 2 && state != 3) {
    return Status::InvalidProblem("out-of-range value for job_state.state");
  }
  out->state = static_cast<WireJobState>(state);
  HTDP_RETURN_IF_ERROR(r.U16(&out->wire_code, "job_state.wire_code"));
  HTDP_RETURN_IF_ERROR(r.Str(&out->message, "job_state.message"));
  return Status::Ok();
}

void EncodeCancel(WireWriter& w, const CancelRequest& request) {
  w.U64(request.job_id);
}

Status DecodeCancel(WireReader& r, CancelRequest* out) {
  return r.U64(&out->job_id, "cancel.job_id");
}

void EncodeStats(WireWriter& w, const StatsReply& msg) {
  w.U64(msg.engine.submitted);
  w.U64(msg.engine.completed);
  w.U64(msg.engine.succeeded);
  w.U64(msg.engine.failed);
  w.U64(msg.engine.cancelled);
  w.U64(msg.engine.deadline_exceeded);
  w.U64(msg.engine.budget_rejected);
  w.U64(msg.engine.queue_depth);
  w.U64(msg.engine.running);
  w.F64(msg.engine.uptime_seconds);
  w.F64(msg.engine.jobs_per_second);
  w.U32(static_cast<std::uint32_t>(msg.tenants.size()));
  for (const StatsReply::TenantRow& row : msg.tenants) {
    w.Str(row.name);
    w.F64(row.total.epsilon);
    w.F64(row.total.delta);
    w.F64(row.spent.epsilon);
    w.F64(row.spent.delta);
    w.U64(row.admitted);
    w.U64(row.rejected);
    w.U64(row.refunded);
  }
  w.U64(msg.connections);
  w.U64(msg.retained_jobs);
  w.Bool(msg.draining);
  // Overload-protection counters, appended in a later revision (the codec's
  // trailing-bytes rule keeps older peers compatible).
  w.U64(msg.engine.unavailable_rejected);
  w.U64(msg.engine.shed_expired);
  w.Bool(msg.engine.overloaded);
  // Work-stealing scheduler telemetry, appended in a further revision under
  // the same trailing-bytes rule.
  w.U64(msg.engine.steals);
  w.U64(msg.engine.steal_failures);
  w.U32(static_cast<std::uint32_t>(msg.engine.worker_queue_depths.size()));
  for (const std::size_t depth : msg.engine.worker_queue_depths) {
    w.U64(depth);
  }
}

Status DecodeStats(WireReader& r, StatsReply* out) {
  std::uint64_t counter = 0;
#define HTDP_NET_READ_COUNTER(field)                          \
  HTDP_RETURN_IF_ERROR(r.U64(&counter, "stats." #field));     \
  out->engine.field = static_cast<std::size_t>(counter)
  HTDP_NET_READ_COUNTER(submitted);
  HTDP_NET_READ_COUNTER(completed);
  HTDP_NET_READ_COUNTER(succeeded);
  HTDP_NET_READ_COUNTER(failed);
  HTDP_NET_READ_COUNTER(cancelled);
  HTDP_NET_READ_COUNTER(deadline_exceeded);
  HTDP_NET_READ_COUNTER(budget_rejected);
  HTDP_NET_READ_COUNTER(queue_depth);
  HTDP_NET_READ_COUNTER(running);
#undef HTDP_NET_READ_COUNTER
  HTDP_RETURN_IF_ERROR(r.F64(&out->engine.uptime_seconds, "stats.uptime"));
  HTDP_RETURN_IF_ERROR(
      r.F64(&out->engine.jobs_per_second, "stats.jobs_per_second"));
  std::uint32_t tenants = 0;
  HTDP_RETURN_IF_ERROR(r.U32(&tenants, "stats.tenants"));
  out->tenants.clear();
  for (std::uint32_t i = 0; i < tenants; ++i) {
    StatsReply::TenantRow row;
    HTDP_RETURN_IF_ERROR(r.Str(&row.name, "tenant.name"));
    HTDP_RETURN_IF_ERROR(r.F64(&row.total.epsilon, "tenant.total.epsilon"));
    HTDP_RETURN_IF_ERROR(r.F64(&row.total.delta, "tenant.total.delta"));
    HTDP_RETURN_IF_ERROR(r.F64(&row.spent.epsilon, "tenant.spent.epsilon"));
    HTDP_RETURN_IF_ERROR(r.F64(&row.spent.delta, "tenant.spent.delta"));
    HTDP_RETURN_IF_ERROR(r.U64(&row.admitted, "tenant.admitted"));
    HTDP_RETURN_IF_ERROR(r.U64(&row.rejected, "tenant.rejected"));
    HTDP_RETURN_IF_ERROR(r.U64(&row.refunded, "tenant.refunded"));
    out->tenants.push_back(std::move(row));
  }
  HTDP_RETURN_IF_ERROR(r.U64(&out->connections, "stats.connections"));
  HTDP_RETURN_IF_ERROR(r.U64(&out->retained_jobs, "stats.retained_jobs"));
  HTDP_RETURN_IF_ERROR(r.Bool(&out->draining, "stats.draining"));
  // Overload-protection counters from newer daemons; absent from older ones.
  out->engine.unavailable_rejected = 0;
  out->engine.shed_expired = 0;
  out->engine.overloaded = false;
  if (r.remaining() > 0) {
    HTDP_RETURN_IF_ERROR(
        r.U64(&counter, "stats.unavailable_rejected"));
    out->engine.unavailable_rejected = static_cast<std::size_t>(counter);
    HTDP_RETURN_IF_ERROR(r.U64(&counter, "stats.shed_expired"));
    out->engine.shed_expired = static_cast<std::size_t>(counter);
    HTDP_RETURN_IF_ERROR(r.Bool(&out->engine.overloaded, "stats.overloaded"));
  }
  // Work-stealing scheduler telemetry from newer daemons.
  out->engine.steals = 0;
  out->engine.steal_failures = 0;
  out->engine.worker_queue_depths.clear();
  if (r.remaining() > 0) {
    HTDP_RETURN_IF_ERROR(r.U64(&counter, "stats.steals"));
    out->engine.steals = static_cast<std::size_t>(counter);
    HTDP_RETURN_IF_ERROR(r.U64(&counter, "stats.steal_failures"));
    out->engine.steal_failures = static_cast<std::size_t>(counter);
    std::uint32_t workers = 0;
    HTDP_RETURN_IF_ERROR(r.U32(&workers, "stats.worker_count"));
    for (std::uint32_t i = 0; i < workers; ++i) {
      HTDP_RETURN_IF_ERROR(r.U64(&counter, "stats.worker_queue_depth"));
      out->engine.worker_queue_depths.push_back(
          static_cast<std::size_t>(counter));
    }
  }
  return Status::Ok();
}

void EncodeSolverList(WireWriter& w, const SolverListReply& msg) {
  w.U32(static_cast<std::uint32_t>(msg.solvers.size()));
  for (const SolverListReply::Row& row : msg.solvers) {
    w.Str(row.name);
    w.Str(row.description);
  }
}

Status DecodeSolverList(WireReader& r, SolverListReply* out) {
  std::uint32_t count = 0;
  HTDP_RETURN_IF_ERROR(r.U32(&count, "solver_list.count"));
  out->solvers.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    SolverListReply::Row row;
    HTDP_RETURN_IF_ERROR(r.Str(&row.name, "solver_list.name"));
    HTDP_RETURN_IF_ERROR(r.Str(&row.description, "solver_list.description"));
    out->solvers.push_back(std::move(row));
  }
  return Status::Ok();
}

void EncodeResultChunk(WireWriter& w, const ResultChunk& msg) {
  w.U64(msg.job_id);
  w.U32(static_cast<std::uint32_t>(msg.bytes.size()));
  w.Raw(msg.bytes.data(), msg.bytes.size());
}

Status DecodeResultChunk(WireReader& r, ResultChunk* out) {
  HTDP_RETURN_IF_ERROR(r.U64(&out->job_id, "result_chunk.job_id"));
  std::uint32_t size = 0;
  HTDP_RETURN_IF_ERROR(r.U32(&size, "result_chunk.size"));
  if (size > r.remaining()) {
    return Status::InvalidProblem(
        "truncated payload reading result_chunk.bytes");
  }
  out->bytes.resize(size);
  if (size > 0) {
    HTDP_RETURN_IF_ERROR(r.Bytes(out->bytes.data(), size,
                                 "result_chunk.bytes"));
  }
  return Status::Ok();
}

void EncodeResultEnd(WireWriter& w, const ResultEnd& msg) {
  w.U64(msg.job_id);
  w.U64(msg.total_bytes);
}

Status DecodeResultEnd(WireReader& r, ResultEnd* out) {
  HTDP_RETURN_IF_ERROR(r.U64(&out->job_id, "result_end.job_id"));
  HTDP_RETURN_IF_ERROR(r.U64(&out->total_bytes, "result_end.total_bytes"));
  return Status::Ok();
}

void EncodeError(WireWriter& w, const WireError& msg) {
  w.U16(msg.wire_code);
  w.U64(msg.job_id);
  w.Str(msg.message);
  w.U32(msg.retry_after_ms);
}

Status DecodeError(WireReader& r, WireError* out) {
  HTDP_RETURN_IF_ERROR(r.U16(&out->wire_code, "error.wire_code"));
  HTDP_RETURN_IF_ERROR(r.U64(&out->job_id, "error.job_id"));
  HTDP_RETURN_IF_ERROR(r.Str(&out->message, "error.message"));
  // Appended in a later revision; an older peer's frame simply ends here.
  out->retry_after_ms = 0;
  if (r.remaining() >= 4) {
    HTDP_RETURN_IF_ERROR(r.U32(&out->retry_after_ms, "error.retry_after_ms"));
  }
  return Status::Ok();
}

void EncodeMetrics(WireWriter& w, const MetricsRequest& request) {
  w.U8(static_cast<std::uint8_t>(request.format));
}

Status DecodeMetrics(WireReader& r, MetricsRequest* out) {
  std::uint8_t format = 0;
  HTDP_RETURN_IF_ERROR(r.U8(&format, "metrics.format"));
  if (format > static_cast<std::uint8_t>(MetricsFormat::kTraceChrome)) {
    return Status::InvalidProblem("metrics.format " + std::to_string(format) +
                                  " is not a known export format");
  }
  out->format = static_cast<MetricsFormat>(format);
  return Status::Ok();
}

void EncodeMetricsReply(WireWriter& w, const MetricsReply& msg) {
  w.U8(static_cast<std::uint8_t>(msg.format));
  w.Str(msg.body);
}

Status DecodeMetricsReply(WireReader& r, MetricsReply* out) {
  std::uint8_t format = 0;
  HTDP_RETURN_IF_ERROR(r.U8(&format, "metrics_ok.format"));
  out->format = static_cast<MetricsFormat>(format);
  HTDP_RETURN_IF_ERROR(r.Str(&out->body, "metrics_ok.body"));
  return Status::Ok();
}

void EncodeBudgetReply(WireWriter& w, const BudgetReply& msg) {
  w.U32(static_cast<std::uint32_t>(msg.tenants.size()));
  for (const BudgetReply::TenantRow& row : msg.tenants) {
    w.Str(row.name);
    w.F64(row.total.epsilon);
    w.F64(row.total.delta);
    w.F64(row.spent.epsilon);
    w.F64(row.spent.delta);
    w.F64(row.remaining.epsilon);
    w.F64(row.remaining.delta);
    w.F64(row.recovered.epsilon);
    w.F64(row.recovered.delta);
    w.U64(row.admitted);
    w.U64(row.rejected);
    w.U64(row.refunded);
    w.U64(row.open);
    w.U64(row.recovered_reserves);
  }
  w.Bool(msg.durable);
  w.Str(msg.state_dir);
  w.Str(msg.fsync_policy);
  w.U64(msg.journal_records);
  w.U64(msg.journal_bytes);
  w.U64(msg.journal_lag_records);
  w.U64(msg.snapshots);
  w.U64(msg.open_reservations);
  w.U64(msg.recovered_records);
  w.U64(msg.recovered_reserves);
  w.U64(msg.torn_bytes_discarded);
  w.F64(msg.recovery_seconds);
}

Status DecodeBudgetReply(WireReader& r, BudgetReply* out) {
  std::uint32_t tenants = 0;
  HTDP_RETURN_IF_ERROR(r.U32(&tenants, "budget_ok.tenants"));
  out->tenants.clear();
  for (std::uint32_t i = 0; i < tenants; ++i) {
    BudgetReply::TenantRow row;
    HTDP_RETURN_IF_ERROR(r.Str(&row.name, "budget.name"));
    HTDP_RETURN_IF_ERROR(r.F64(&row.total.epsilon, "budget.total.epsilon"));
    HTDP_RETURN_IF_ERROR(r.F64(&row.total.delta, "budget.total.delta"));
    HTDP_RETURN_IF_ERROR(r.F64(&row.spent.epsilon, "budget.spent.epsilon"));
    HTDP_RETURN_IF_ERROR(r.F64(&row.spent.delta, "budget.spent.delta"));
    HTDP_RETURN_IF_ERROR(
        r.F64(&row.remaining.epsilon, "budget.remaining.epsilon"));
    HTDP_RETURN_IF_ERROR(
        r.F64(&row.remaining.delta, "budget.remaining.delta"));
    HTDP_RETURN_IF_ERROR(
        r.F64(&row.recovered.epsilon, "budget.recovered.epsilon"));
    HTDP_RETURN_IF_ERROR(
        r.F64(&row.recovered.delta, "budget.recovered.delta"));
    HTDP_RETURN_IF_ERROR(r.U64(&row.admitted, "budget.admitted"));
    HTDP_RETURN_IF_ERROR(r.U64(&row.rejected, "budget.rejected"));
    HTDP_RETURN_IF_ERROR(r.U64(&row.refunded, "budget.refunded"));
    HTDP_RETURN_IF_ERROR(r.U64(&row.open, "budget.open"));
    HTDP_RETURN_IF_ERROR(
        r.U64(&row.recovered_reserves, "budget.recovered_reserves"));
    out->tenants.push_back(std::move(row));
  }
  HTDP_RETURN_IF_ERROR(r.Bool(&out->durable, "budget_ok.durable"));
  HTDP_RETURN_IF_ERROR(r.Str(&out->state_dir, "budget_ok.state_dir"));
  HTDP_RETURN_IF_ERROR(r.Str(&out->fsync_policy, "budget_ok.fsync_policy"));
  HTDP_RETURN_IF_ERROR(
      r.U64(&out->journal_records, "budget_ok.journal_records"));
  HTDP_RETURN_IF_ERROR(r.U64(&out->journal_bytes, "budget_ok.journal_bytes"));
  HTDP_RETURN_IF_ERROR(
      r.U64(&out->journal_lag_records, "budget_ok.journal_lag_records"));
  HTDP_RETURN_IF_ERROR(r.U64(&out->snapshots, "budget_ok.snapshots"));
  HTDP_RETURN_IF_ERROR(
      r.U64(&out->open_reservations, "budget_ok.open_reservations"));
  HTDP_RETURN_IF_ERROR(
      r.U64(&out->recovered_records, "budget_ok.recovered_records"));
  HTDP_RETURN_IF_ERROR(
      r.U64(&out->recovered_reserves, "budget_ok.recovered_reserves"));
  HTDP_RETURN_IF_ERROR(
      r.U64(&out->torn_bytes_discarded, "budget_ok.torn_bytes_discarded"));
  HTDP_RETURN_IF_ERROR(
      r.F64(&out->recovery_seconds, "budget_ok.recovery_seconds"));
  return Status::Ok();
}

}  // namespace net
}  // namespace htdp
