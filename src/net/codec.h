#ifndef HTDP_NET_CODEC_H_
#define HTDP_NET_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace htdp {
namespace net {

/// ## The htdpd wire codec: length-prefixed frames, explicit little-endian
///
/// Everything htdpd speaks is a FRAME:
///
///   offset  size  field
///   0       4     magic   'h' 't' 'd' 'p' (0x70647468 as little-endian u32)
///   4       1     version (kWireVersion)
///   5       1     type    (FrameType)
///   6       2     flags   reserved, must be zero
///   8       4     payload length in bytes (little-endian)
///   12      ...   payload
///
/// Integers are encoded little-endian BY BYTE SHIFTS -- never by casting a
/// struct or pointer onto the buffer -- so the format is identical on every
/// host and the readers have no alignment or aliasing hazards. Doubles
/// travel as their IEEE-754 bit pattern in a u64, which makes every numeric
/// payload bit-exact end to end: a dataset uploaded through the codec fits
/// to the same bits as the in-process original.
///
/// This is the daemon's trust boundary, so the decoding contract is strict:
/// a malformed, truncated, corrupted-length or oversized frame surfaces as a
/// typed error Status (util/status.h taxonomy, kInvalidProblem) and NEVER
/// crashes, allocates unboundedly, or aborts the process
/// (tests/codec_test.cc sweeps these cases under sanitizers).
inline constexpr std::uint32_t kWireMagic = 0x70647468u;  // "htdp"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;

/// Hard ceiling on a single frame's payload, defending the daemon against a
/// hostile 4 GiB length prefix. Large enough for the biggest practical
/// dataset upload (64 MiB ~ a 1M x 8 or 16k x 512 double matrix); results
/// larger than one frame stream as RESULT_CHUNK frames instead.
inline constexpr std::size_t kDefaultMaxPayloadBytes = 64u << 20;

/// Streamed FitResult payloads are cut into chunks of at most this size so
/// one giant result cannot monopolize a connection's write buffer.
inline constexpr std::size_t kResultChunkBytes = 256u << 10;

/// Every message type of protocol version 1. Values are wire-stable: never
/// renumber, only append. (6 was reserved for a dedicated CANCEL_OK and is
/// intentionally unused -- CANCEL replies with a JOB_STATE frame.)
enum class FrameType : std::uint8_t {
  kSubmit = 1,       // client -> server: run a fit
  kSubmitOk = 2,     // server -> client: job accepted, carries the job id
  kPoll = 3,         // client -> server: query a job
  kJobState = 4,     // server -> client: job status (poll/cancel reply, or
                     //   pushed for streamed jobs)
  kCancel = 5,       // client -> server: cancel a job
  kStats = 7,        // client -> server: engine/tenant/daemon counters
  kStatsOk = 8,      // server -> client
  kListSolvers = 9,  // client -> server
  kSolverList = 10,  // server -> client
  kResultChunk = 11,  // server -> client: slice of a serialized FitResult
  kResultEnd = 12,    // server -> client: result complete, carries total size
  kError = 13,        // server -> client: typed request failure
  kMetrics = 14,      // client -> server: observability export request
  kMetricsOk = 15,    // server -> client: exported metrics/trace body
  kBudget = 16,       // client -> server: privacy-budget ledger snapshot
  kBudgetOk = 17,     // server -> client: per-tenant spend + durability info
};

/// True for the type values a version-1 peer understands.
bool KnownFrameType(std::uint8_t value);

/// Stable lower-case frame-type name for diagnostics, e.g. "submit".
const char* FrameTypeName(FrameType type);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

/// Appends primitive values to a byte buffer in the wire encoding. All
/// multi-byte integers little-endian via shifts; see the format comment
/// above. The writer never fails: encoding is total.
class WireWriter {
 public:
  void U8(std::uint8_t v) { bytes_.push_back(v); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  /// Two's-complement via the u32 carrier (well-defined both directions).
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  /// IEEE-754 bit pattern in a u64: bit-exact for every value including
  /// NaN payloads, infinities, -0.0 and denormals.
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// u32 byte length + raw bytes (no terminator).
  void Str(const std::string& v);
  /// u64 element count + per-element F64.
  void F64Vec(const std::vector<double>& v);
  /// u64 element count + per-element U64.
  void U64Vec(const std::vector<std::uint64_t>& v);
  void Raw(const void* data, std::size_t n);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Reads primitive values back out of a payload, with every read bounds-
/// checked: running past the end returns kInvalidProblem naming the field
/// ("truncated payload reading <what>") instead of touching out-of-range
/// memory. Container reads validate the declared element count against the
/// bytes actually remaining BEFORE allocating, so a corrupted count cannot
/// trigger a multi-gigabyte allocation.
///
/// Readers do not require payload exhaustion: trailing bytes they were not
/// asked to read are ignored, which is the protocol's forward-compatibility
/// rule (newer peers append fields at the end of existing payloads).
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  Status U8(std::uint8_t* out, const char* what);
  Status U16(std::uint16_t* out, const char* what);
  Status U32(std::uint32_t* out, const char* what);
  Status U64(std::uint64_t* out, const char* what);
  Status I32(std::int32_t* out, const char* what);
  Status F64(double* out, const char* what);
  Status Bool(bool* out, const char* what);
  Status Str(std::string* out, const char* what);
  Status F64Vec(std::vector<double>* out, const char* what);
  Status U64Vec(std::vector<std::uint64_t>* out, const char* what);
  /// Copies exactly n raw bytes.
  Status Bytes(void* out, std::size_t n, const char* what);

  std::size_t remaining() const { return size_ - offset_; }
  std::size_t offset() const { return offset_; }

 private:
  Status Need(std::size_t n, const char* what);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

/// Encodes a complete frame (header + payload). Aborts via HTDP_CHECK if the
/// payload exceeds `max_payload` -- oversized frames are a programming error
/// on the sending side (results are chunked; nothing else grows unbounded).
std::vector<std::uint8_t> EncodeFrame(
    FrameType type, const std::vector<std::uint8_t>& payload,
    std::size_t max_payload = kDefaultMaxPayloadBytes);

/// Appends the encoded frame to `out` (the per-connection write buffer).
void AppendFrame(std::vector<std::uint8_t>& out, FrameType type,
                 const std::uint8_t* payload, std::size_t payload_size,
                 std::size_t max_payload = kDefaultMaxPayloadBytes);

/// Incremental frame extractor over a byte stream: feed it whatever the
/// socket produced, then pull complete frames out. Unlike the payload
/// readers it is stateful, because TCP has no message boundaries.
///
/// Error contract: Next() returning a non-ok Status means the STREAM is
/// poisoned (bad magic, unsupported version, reserved flag bits, unknown
/// type, oversized length) -- there is no way to re-synchronize a
/// length-prefixed stream after a corrupt header, so the connection must be
/// closed (after sending a best-effort ERROR frame). A truncated stream is
/// NOT an error: Next() just reports no-frame-yet until more bytes arrive.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayloadBytes)
      : max_payload_(max_payload) {}

  /// Appends raw socket bytes. No validation happens here.
  void Feed(const std::uint8_t* data, std::size_t n);

  /// Extracts the next complete frame:
  ///   ok,  frame set   -> one frame decoded, call again (more may be ready)
  ///   ok,  frame empty -> need more bytes
  ///   !ok              -> protocol violation; close the connection
  /// After an error the decoder stays poisoned and keeps returning it.
  Status Next(std::optional<Frame>* frame);

  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // bytes of buffer_ already handed out
  Status poisoned_ = Status::Ok();
};

}  // namespace net
}  // namespace htdp

#endif  // HTDP_NET_CODEC_H_
