#ifndef HTDP_NET_FAULT_H_
#define HTDP_NET_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/status.h"

namespace htdp {
namespace net {

/// ## Deterministic wire-fault injection
///
/// The chaos harness (tests/chaos_soak_test.cc, the CI chaos leg, and the
/// HTDP_FAULT_PLAN knob on htdpd) perturbs the byte stream between client
/// and daemon -- dropped connections, injected stalls, truncated writes,
/// partial sends, mid-frame closes -- and then checks the system-level
/// invariants the protocol promises anyway: no crash, no leak, and every
/// fit that completes is bit-identical to a local TryFit at the same seed.
///
/// Faults must be DETERMINISTIC to be debuggable: a FaultPlan is a seed
/// plus per-fault probabilities, and every decision comes from the plan's
/// own splitmix64 stream (never from the solver RNG, never from time), so a
/// failing chaos seed replays exactly.

/// A self-seeded splitmix64 decision stream. Independent of rng/rng.h on
/// purpose: injecting a fault must never advance (or be advanced by) the
/// solver's random stream, or the bit-identity check would be meaningless.
class FaultRng {
 public:
  explicit FaultRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t NextU64() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1) with 53 random bits.
  double NextUniform() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

/// A seeded fault schedule. Each probability is consulted per injection
/// point (one uniform draw decides among the fault kinds, so they are
/// mutually exclusive per event and their probabilities must sum to <= 1).
struct FaultPlan {
  std::uint64_t seed = 1;

  /// Close the connection before the operation transfers any bytes.
  double drop_prob = 0.0;
  /// Transfer a strict prefix of the operation's bytes, then close --
  /// the mid-frame cut, which is what half-open peers look like.
  double truncate_prob = 0.0;
  /// Split a write into two separate sends (exercises every partial-read
  /// path in the decoders without losing data).
  double partial_prob = 0.0;
  /// Stall the operation by delay_ms before letting it proceed.
  double delay_prob = 0.0;
  double delay_ms = 0.0;

  bool enabled() const {
    return drop_prob > 0 || truncate_prob > 0 || partial_prob > 0 ||
           delay_prob > 0;
  }

  /// The canonical soak mix the chaos test and CI leg use: a few percent of
  /// every fault kind, spicy enough that a 32-seed sweep exercises each
  /// path many times but most requests still eventually succeed.
  static FaultPlan Chaos(std::uint64_t seed);

  /// "seed=7,drop=0.05,truncate=0.05,partial=0.2,delay=0.1,delay_ms=5" --
  /// round-trips through FromSpec; keys may appear in any order and
  /// unmentioned keys keep their zero defaults.
  std::string ToSpec() const;
  static StatusOr<FaultPlan> FromSpec(const std::string& spec);

  /// Parses the HTDP_FAULT_PLAN environment variable; nullopt when unset or
  /// empty. A malformed value surfaces as an error so a typo'd chaos run
  /// fails loudly instead of silently running faultless.
  static StatusOr<std::optional<FaultPlan>> FromEnv();
};

/// What a single injection decision came out to.
enum class FaultAction : std::uint8_t {
  kNone = 0,
  kDrop,
  kTruncate,
  kPartial,
  kDelay,
};

/// Draws one decision from the stream. Pure given the RNG state: the plan's
/// probabilities partition [0, 1).
FaultAction DrawFault(const FaultPlan& plan, FaultRng& rng);

/// Running totals a harness can assert on ("the sweep actually injected
/// faults") and htdpd can log at exit.
struct FaultCounters {
  std::size_t drops = 0;
  std::size_t truncates = 0;
  std::size_t partials = 0;
  std::size_t delays = 0;

  std::size_t total() const { return drops + truncates + partials + delays; }
};

}  // namespace net
}  // namespace htdp

#endif  // HTDP_NET_FAULT_H_
