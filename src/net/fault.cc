#include "net/fault.h"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace htdp {
namespace net {
namespace {

/// Splits "a=1,b=2" into (key, value) pairs; whitespace is not tolerated
/// (the spec travels through env vars and shell one-liners, where stray
/// spaces are always a typo).
Status SplitSpec(const std::string& spec,
                 std::vector<std::pair<std::string, std::string>>* out) {
  std::istringstream stream(spec);
  std::string field;
  while (std::getline(stream, field, ',')) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == field.size()) {
      return Status::InvalidProblem("fault plan wants KEY=VALUE fields, got \"" +
                                    field + "\" in \"" + spec + "\"");
    }
    out->emplace_back(field.substr(0, eq), field.substr(eq + 1));
  }
  return Status::Ok();
}

Status ParseProb(const std::string& key, const std::string& value,
                 double* out) {
  try {
    *out = std::stod(value);
  } catch (const std::exception&) {
    return Status::InvalidProblem("unparseable fault plan value " + key + "=" +
                                  value);
  }
  if (*out < 0.0 || *out > 1.0) {
    return Status::InvalidProblem("fault probability " + key + "=" + value +
                                  " outside [0, 1]");
  }
  return Status::Ok();
}

/// Trims trailing zeros so ToSpec stays readable ("0.05", not "0.050000").
std::string FormatDouble(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

FaultPlan FaultPlan::Chaos(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = 0.03;
  plan.truncate_prob = 0.03;
  plan.partial_prob = 0.25;
  plan.delay_prob = 0.10;
  plan.delay_ms = 2.0;
  return plan;
}

std::string FaultPlan::ToSpec() const {
  std::ostringstream out;
  out << "seed=" << seed;
  if (drop_prob > 0) out << ",drop=" << FormatDouble(drop_prob);
  if (truncate_prob > 0) out << ",truncate=" << FormatDouble(truncate_prob);
  if (partial_prob > 0) out << ",partial=" << FormatDouble(partial_prob);
  if (delay_prob > 0) out << ",delay=" << FormatDouble(delay_prob);
  if (delay_ms > 0) out << ",delay_ms=" << FormatDouble(delay_ms);
  return out.str();
}

StatusOr<FaultPlan> FaultPlan::FromSpec(const std::string& spec) {
  std::vector<std::pair<std::string, std::string>> fields;
  HTDP_RETURN_IF_ERROR(SplitSpec(spec, &fields));
  FaultPlan plan;
  for (const auto& [key, value] : fields) {
    if (key == "seed") {
      try {
        plan.seed = std::stoull(value);
      } catch (const std::exception&) {
        return Status::InvalidProblem("unparseable fault plan seed \"" + value +
                                      "\"");
      }
    } else if (key == "drop") {
      HTDP_RETURN_IF_ERROR(ParseProb(key, value, &plan.drop_prob));
    } else if (key == "truncate") {
      HTDP_RETURN_IF_ERROR(ParseProb(key, value, &plan.truncate_prob));
    } else if (key == "partial") {
      HTDP_RETURN_IF_ERROR(ParseProb(key, value, &plan.partial_prob));
    } else if (key == "delay") {
      HTDP_RETURN_IF_ERROR(ParseProb(key, value, &plan.delay_prob));
    } else if (key == "delay_ms") {
      try {
        plan.delay_ms = std::stod(value);
      } catch (const std::exception&) {
        return Status::InvalidProblem("unparseable fault plan delay_ms \"" +
                                      value + "\"");
      }
      if (plan.delay_ms < 0) {
        return Status::InvalidProblem("fault plan delay_ms must be >= 0");
      }
    } else {
      return Status::InvalidProblem("unknown fault plan key \"" + key +
                                    "\" in \"" + spec + "\"");
    }
  }
  if (plan.drop_prob + plan.truncate_prob + plan.partial_prob +
          plan.delay_prob >
      1.0) {
    return Status::InvalidProblem(
        "fault probabilities sum past 1.0 in \"" + spec +
        "\" (one uniform draw decides among them)");
  }
  return plan;
}

StatusOr<std::optional<FaultPlan>> FaultPlan::FromEnv() {
  const char* raw = std::getenv("HTDP_FAULT_PLAN");
  if (raw == nullptr || raw[0] == '\0') {
    return std::optional<FaultPlan>(std::nullopt);
  }
  StatusOr<FaultPlan> plan = FromSpec(raw);
  HTDP_RETURN_IF_ERROR(plan.status());
  return std::optional<FaultPlan>(plan.value());
}

FaultAction DrawFault(const FaultPlan& plan, FaultRng& rng) {
  if (!plan.enabled()) return FaultAction::kNone;
  const double u = rng.NextUniform();
  double edge = plan.drop_prob;
  if (u < edge) return FaultAction::kDrop;
  edge += plan.truncate_prob;
  if (u < edge) return FaultAction::kTruncate;
  edge += plan.partial_prob;
  if (u < edge) return FaultAction::kPartial;
  edge += plan.delay_prob;
  if (u < edge) return FaultAction::kDelay;
  return FaultAction::kNone;
}

}  // namespace net
}  // namespace htdp
