#include "net/codec.h"

#include <bit>
#include <cstring>
#include <string>

#include "util/check.h"

namespace htdp {
namespace net {
namespace {

std::string TruncatedMessage(const char* what) {
  return std::string("truncated payload reading ") + what;
}

}  // namespace

bool KnownFrameType(std::uint8_t value) {
  switch (static_cast<FrameType>(value)) {
    case FrameType::kSubmit:
    case FrameType::kSubmitOk:
    case FrameType::kPoll:
    case FrameType::kJobState:
    case FrameType::kCancel:
    case FrameType::kStats:
    case FrameType::kStatsOk:
    case FrameType::kListSolvers:
    case FrameType::kSolverList:
    case FrameType::kResultChunk:
    case FrameType::kResultEnd:
    case FrameType::kError:
    case FrameType::kMetrics:
    case FrameType::kMetricsOk:
    case FrameType::kBudget:
    case FrameType::kBudgetOk:
      return true;
  }
  return false;
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kSubmit:
      return "submit";
    case FrameType::kSubmitOk:
      return "submit-ok";
    case FrameType::kPoll:
      return "poll";
    case FrameType::kJobState:
      return "job-state";
    case FrameType::kCancel:
      return "cancel";
    case FrameType::kStats:
      return "stats";
    case FrameType::kStatsOk:
      return "stats-ok";
    case FrameType::kListSolvers:
      return "list-solvers";
    case FrameType::kSolverList:
      return "solver-list";
    case FrameType::kResultChunk:
      return "result-chunk";
    case FrameType::kResultEnd:
      return "result-end";
    case FrameType::kError:
      return "error";
    case FrameType::kMetrics:
      return "metrics";
    case FrameType::kMetricsOk:
      return "metrics-ok";
    case FrameType::kBudget:
      return "budget";
    case FrameType::kBudgetOk:
      return "budget-ok";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// WireWriter

void WireWriter::U16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::U32(std::uint32_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 16));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void WireWriter::U64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::Str(const std::string& v) {
  HTDP_CHECK(v.size() <= 0xffffffffu) << "string too long for the wire";
  U32(static_cast<std::uint32_t>(v.size()));
  Raw(v.data(), v.size());
}

void WireWriter::F64Vec(const std::vector<double>& v) {
  U64(static_cast<std::uint64_t>(v.size()));
  for (double x : v) F64(x);
}

void WireWriter::U64Vec(const std::vector<std::uint64_t>& v) {
  U64(static_cast<std::uint64_t>(v.size()));
  for (std::uint64_t x : v) U64(x);
}

void WireWriter::Raw(const void* data, std::size_t n) {
  const std::uint8_t* bytes = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), bytes, bytes + n);
}

// ---------------------------------------------------------------------------
// WireReader

Status WireReader::Need(std::size_t n, const char* what) {
  if (size_ - offset_ < n) {
    return Status::InvalidProblem(TruncatedMessage(what));
  }
  return Status::Ok();
}

Status WireReader::U8(std::uint8_t* out, const char* what) {
  HTDP_RETURN_IF_ERROR(Need(1, what));
  *out = data_[offset_++];
  return Status::Ok();
}

Status WireReader::U16(std::uint16_t* out, const char* what) {
  HTDP_RETURN_IF_ERROR(Need(2, what));
  *out = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(data_[offset_]) |
      static_cast<std::uint16_t>(data_[offset_ + 1]) << 8);
  offset_ += 2;
  return Status::Ok();
}

Status WireReader::U32(std::uint32_t* out, const char* what) {
  HTDP_RETURN_IF_ERROR(Need(4, what));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  *out = v;
  return Status::Ok();
}

Status WireReader::U64(std::uint64_t* out, const char* what) {
  HTDP_RETURN_IF_ERROR(Need(8, what));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  *out = v;
  return Status::Ok();
}

Status WireReader::I32(std::int32_t* out, const char* what) {
  std::uint32_t raw = 0;
  HTDP_RETURN_IF_ERROR(U32(&raw, what));
  *out = static_cast<std::int32_t>(raw);
  return Status::Ok();
}

Status WireReader::F64(double* out, const char* what) {
  std::uint64_t raw = 0;
  HTDP_RETURN_IF_ERROR(U64(&raw, what));
  *out = std::bit_cast<double>(raw);
  return Status::Ok();
}

Status WireReader::Bool(bool* out, const char* what) {
  std::uint8_t raw = 0;
  HTDP_RETURN_IF_ERROR(U8(&raw, what));
  if (raw > 1) {
    return Status::InvalidProblem(std::string("non-boolean byte reading ") +
                                  what);
  }
  *out = raw != 0;
  return Status::Ok();
}

Status WireReader::Str(std::string* out, const char* what) {
  std::uint32_t length = 0;
  HTDP_RETURN_IF_ERROR(U32(&length, what));
  HTDP_RETURN_IF_ERROR(Need(length, what));
  out->assign(reinterpret_cast<const char*>(data_ + offset_), length);
  offset_ += length;
  return Status::Ok();
}

Status WireReader::F64Vec(std::vector<double>* out, const char* what) {
  std::uint64_t count = 0;
  HTDP_RETURN_IF_ERROR(U64(&count, what));
  // Validate the declared count against the bytes actually present before
  // allocating, so a corrupted count cannot force a huge allocation.
  if (count > remaining() / 8) {
    return Status::InvalidProblem(TruncatedMessage(what));
  }
  out->resize(static_cast<std::size_t>(count));
  for (double& x : *out) HTDP_RETURN_IF_ERROR(F64(&x, what));
  return Status::Ok();
}

Status WireReader::U64Vec(std::vector<std::uint64_t>* out, const char* what) {
  std::uint64_t count = 0;
  HTDP_RETURN_IF_ERROR(U64(&count, what));
  if (count > remaining() / 8) {
    return Status::InvalidProblem(TruncatedMessage(what));
  }
  out->resize(static_cast<std::size_t>(count));
  for (std::uint64_t& x : *out) HTDP_RETURN_IF_ERROR(U64(&x, what));
  return Status::Ok();
}

Status WireReader::Bytes(void* out, std::size_t n, const char* what) {
  HTDP_RETURN_IF_ERROR(Need(n, what));
  std::memcpy(out, data_ + offset_, n);
  offset_ += n;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Frames

void AppendFrame(std::vector<std::uint8_t>& out, FrameType type,
                 const std::uint8_t* payload, std::size_t payload_size,
                 std::size_t max_payload) {
  HTDP_CHECK(payload_size <= max_payload)
      << "frame payload of " << payload_size
      << " bytes exceeds the limit of " << max_payload
      << " (chunk large messages)";
  const std::uint32_t length = static_cast<std::uint32_t>(payload_size);
  out.reserve(out.size() + kFrameHeaderBytes + payload_size);
  // Magic, spelled as bytes so the file encodes exactly "htdp".
  out.push_back('h');
  out.push_back('t');
  out.push_back('d');
  out.push_back('p');
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);  // reserved flags
  out.push_back(0);
  out.push_back(static_cast<std::uint8_t>(length));
  out.push_back(static_cast<std::uint8_t>(length >> 8));
  out.push_back(static_cast<std::uint8_t>(length >> 16));
  out.push_back(static_cast<std::uint8_t>(length >> 24));
  out.insert(out.end(), payload, payload + payload_size);
}

std::vector<std::uint8_t> EncodeFrame(FrameType type,
                                      const std::vector<std::uint8_t>& payload,
                                      std::size_t max_payload) {
  std::vector<std::uint8_t> out;
  AppendFrame(out, type, payload.data(), payload.size(), max_payload);
  return out;
}

void FrameDecoder::Feed(const std::uint8_t* data, std::size_t n) {
  // Compact lazily: once the consumed prefix dominates the buffer, slide the
  // live bytes down so the buffer does not grow without bound on a
  // long-lived connection.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

Status FrameDecoder::Next(std::optional<Frame>* frame) {
  frame->reset();
  if (!poisoned_.ok()) return poisoned_;

  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Status::Ok();
  const std::uint8_t* h = buffer_.data() + consumed_;

  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(h[i]) << (8 * i);
  }
  if (magic != kWireMagic) {
    poisoned_ = Status::InvalidProblem("bad frame magic (not an htdp peer?)");
    return poisoned_;
  }
  if (h[4] != kWireVersion) {
    poisoned_ = Status::InvalidProblem(
        "unsupported wire version " + std::to_string(h[4]) +
        " (this build speaks version " + std::to_string(kWireVersion) + ")");
    return poisoned_;
  }
  if (!KnownFrameType(h[5])) {
    poisoned_ = Status::InvalidProblem("unknown frame type " +
                                       std::to_string(h[5]));
    return poisoned_;
  }
  if (h[6] != 0 || h[7] != 0) {
    poisoned_ =
        Status::InvalidProblem("reserved frame flag bits are not zero");
    return poisoned_;
  }
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(h[8 + i]) << (8 * i);
  }
  if (length > max_payload_) {
    poisoned_ = Status::InvalidProblem(
        "oversized frame: " + std::to_string(length) +
        " payload bytes exceeds the limit of " + std::to_string(max_payload_));
    return poisoned_;
  }
  if (available < kFrameHeaderBytes + length) return Status::Ok();  // partial

  Frame out;
  out.type = static_cast<FrameType>(h[5]);
  out.payload.assign(h + kFrameHeaderBytes, h + kFrameHeaderBytes + length);
  consumed_ += kFrameHeaderBytes + length;
  frame->emplace(std::move(out));
  return Status::Ok();
}

}  // namespace net
}  // namespace htdp
