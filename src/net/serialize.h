#ifndef HTDP_NET_SERIALIZE_H_
#define HTDP_NET_SERIALIZE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/fit_result.h"
#include "api/problem.h"
#include "api/solver_spec.h"
#include "data/dataset.h"
#include "dp/privacy.h"
#include "losses/loss.h"
#include "net/codec.h"
#include "optim/polytope.h"
#include "util/status.h"

namespace htdp {
namespace net {

/// ## Message payloads of the htdpd protocol (version 1)
///
/// This layer turns the library's value types -- Problem, SolverSpec,
/// FitResult, EngineStats -- into frame payloads and back, on top of the
/// WireWriter/WireReader primitives of net/codec.h. Every Decode* returns a
/// typed Status (never aborts, never trusts a length field), and every
/// numeric field round-trips bit-exactly, which is what makes a remote fit
/// bit-identical to an in-process TryFit on the same seed.
///
/// A Problem cannot travel as-is: it holds non-owning pointers to a Loss, a
/// Dataset and a Polytope that live in the caller's process. WireProblem is
/// the owning, nominal description that does travel -- the dataset by value,
/// the loss and constraint by registry-style name + parameter -- and
/// ProblemHolder materializes it back into real objects server-side.

// --- WireProblem --------------------------------------------------------

/// Loss families constructible over the wire. Values are wire-stable.
inline constexpr const char* kWireLossSquared = "squared";
inline constexpr const char* kWireLossLogistic = "logistic";  // param = ridge
inline constexpr const char* kWireLossHuber = "huber";        // param = c
inline constexpr const char* kWireLossBiweight = "biweight";  // param = c
inline constexpr const char* kWireLossMean = "mean";

/// Constraint geometries constructible over the wire. Values are
/// wire-stable.
enum class WireConstraint : std::uint8_t {
  kNone = 0,
  kL1Ball = 1,   // radius field applies
  kSimplex = 2,  // probability simplex, radius ignored
};

/// The owning wire form of a Problem.
struct WireProblem {
  Dataset data;
  std::string loss;        // one of the kWireLoss* names; "" = no loss
  double loss_param = 0.0; // ridge (logistic) or c (huber/biweight)
  WireConstraint constraint = WireConstraint::kNone;
  double constraint_radius = 1.0;
  std::uint64_t prefix = 0;
  std::uint64_t target_sparsity = 0;
  Vector w0;
};

void EncodeWireProblem(WireWriter& w, const WireProblem& problem);
Status DecodeWireProblem(WireReader& r, WireProblem* out);

/// Owns the Loss/Polytope/Dataset materialized from a WireProblem and the
/// Problem view pointing into them. Heap-pinned (no copies or moves) because
/// the Problem's non-owning pointers alias the members.
class ProblemHolder {
 public:
  /// kInvalidProblem on an unknown loss or constraint name; shape errors are
  /// left to the solver's own validation so the diagnostics match the
  /// in-process path exactly.
  static StatusOr<std::unique_ptr<ProblemHolder>> Materialize(WireProblem wp);

  ProblemHolder(const ProblemHolder&) = delete;
  ProblemHolder& operator=(const ProblemHolder&) = delete;

  const Problem& problem() const { return problem_; }

 private:
  ProblemHolder() = default;

  Dataset data_;
  std::unique_ptr<Loss> loss_;
  std::unique_ptr<Polytope> constraint_;
  Problem problem_;
};

// --- SolverSpec ---------------------------------------------------------

/// Encodes the POD surface of a SolverSpec (budget, accounting backend,
/// schedule and knob fields). The function-valued members (observer,
/// should_stop) and the resolution inputs the solver fills itself
/// (algorithm, target_sparsity, num_vertices) do not travel.
void EncodeSpec(WireWriter& w, const SolverSpec& spec);
Status DecodeSpec(WireReader& r, SolverSpec* out);

// --- FitResult ----------------------------------------------------------

void EncodeFitResult(WireWriter& w, const FitResult& result);
Status DecodeFitResult(WireReader& r, FitResult* out);

// --- Request / reply messages -------------------------------------------

/// SUBMIT payload.
struct SubmitRequest {
  std::string tenant;  // "" = no tenant accounting
  std::string solver;  // SolverRegistry name
  std::string tag;
  std::uint64_t seed = 0;
  double deadline_seconds = 0.0;
  bool stream = false;  // push JOB_STATE + result frames on completion
  SolverSpec spec;
  WireProblem problem;
};
void EncodeSubmit(WireWriter& w, const SubmitRequest& request);
Status DecodeSubmit(WireReader& r, SubmitRequest* out);

/// SUBMIT_OK payload.
struct SubmitOk {
  std::uint64_t job_id = 0;
};
void EncodeSubmitOk(WireWriter& w, const SubmitOk& msg);
Status DecodeSubmitOk(WireReader& r, SubmitOk* out);

/// POLL payload.
struct PollRequest {
  std::uint64_t job_id = 0;
  bool deliver = false;  // when done-ok, follow up with the result frames
};
void EncodePoll(WireWriter& w, const PollRequest& request);
Status DecodePoll(WireReader& r, PollRequest* out);

/// Job lifecycle state on the wire. Values are wire-stable (1 was reserved
/// for a distinct "running" state the Engine does not currently expose).
enum class WireJobState : std::uint8_t {
  kInFlight = 0,   // queued or running
  kDoneOk = 2,     // finished with a FitResult
  kDoneError = 3,  // finished with the carried typed error
};

/// JOB_STATE payload (reply to POLL/CANCEL; pushed for streamed jobs).
struct JobStateMsg {
  std::uint64_t job_id = 0;
  WireJobState state = WireJobState::kInFlight;
  std::uint16_t wire_code = 0;  // wire_status.h code when kDoneError
  std::string message;
};
void EncodeJobState(WireWriter& w, const JobStateMsg& msg);
Status DecodeJobState(WireReader& r, JobStateMsg* out);

/// CANCEL payload.
struct CancelRequest {
  std::uint64_t job_id = 0;
};
void EncodeCancel(WireWriter& w, const CancelRequest& request);
Status DecodeCancel(WireReader& r, CancelRequest* out);

/// STATS_OK payload: the Engine counters plus per-tenant budget accounting
/// and daemon-level gauges.
struct StatsReply {
  EngineStats engine;
  struct TenantRow {
    std::string name;
    PrivacyBudget total;
    PrivacyBudget spent;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t refunded = 0;
  };
  std::vector<TenantRow> tenants;
  std::uint64_t connections = 0;
  std::uint64_t retained_jobs = 0;
  bool draining = false;
};
void EncodeStats(WireWriter& w, const StatsReply& msg);
Status DecodeStats(WireReader& r, StatsReply* out);

/// SOLVER_LIST payload.
struct SolverListReply {
  struct Row {
    std::string name;
    std::string description;
  };
  std::vector<Row> solvers;
};
void EncodeSolverList(WireWriter& w, const SolverListReply& msg);
Status DecodeSolverList(WireReader& r, SolverListReply* out);

/// RESULT_CHUNK payload: one slice of a serialized FitResult. Chunks for a
/// job arrive in order on a connection; RESULT_END closes the sequence.
struct ResultChunk {
  std::uint64_t job_id = 0;
  std::vector<std::uint8_t> bytes;
};
void EncodeResultChunk(WireWriter& w, const ResultChunk& msg);
Status DecodeResultChunk(WireReader& r, ResultChunk* out);

/// RESULT_END payload.
struct ResultEnd {
  std::uint64_t job_id = 0;
  std::uint64_t total_bytes = 0;  // must equal the concatenated chunk size
};
void EncodeResultEnd(WireWriter& w, const ResultEnd& msg);
Status DecodeResultEnd(WireReader& r, ResultEnd* out);

/// ERROR payload: a typed request failure. job_id is 0 when the error is
/// not about a specific job (e.g. a malformed frame).
struct WireError {
  std::uint16_t wire_code = 0;  // wire_status.h table
  std::uint64_t job_id = 0;
  std::string message;
  /// For UNAVAILABLE rejections: how long the client should back off before
  /// resubmitting, derived from the server's backlog (RetryAfterHintMs).
  /// 0 = no hint. Appended to the payload, so a version-1 peer that
  /// predates it decodes the frame fine and just never sees the hint (the
  /// codec's trailing-bytes rule); this decoder tolerates its absence.
  std::uint32_t retry_after_ms = 0;
};
void EncodeError(WireWriter& w, const WireError& msg);
Status DecodeError(WireReader& r, WireError* out);

/// Export formats a METRICS request can ask for. Wire-stable values.
enum class MetricsFormat : std::uint8_t {
  kJson = 0,        // MetricRegistry::ToJson()
  kPrometheus = 1,  // MetricRegistry::ToPrometheus() text exposition
  kTraceChrome = 2, // Chrome trace-event JSON of the span collector
};

/// METRICS payload: ask the daemon for an observability export. New
/// formats append enum values; new knobs append payload fields under the
/// trailing-bytes rule.
struct MetricsRequest {
  MetricsFormat format = MetricsFormat::kJson;
};
void EncodeMetrics(WireWriter& w, const MetricsRequest& request);
Status DecodeMetrics(WireReader& r, MetricsRequest* out);

/// METRICS_OK payload: the export body, verbatim in the requested format.
struct MetricsReply {
  MetricsFormat format = MetricsFormat::kJson;
  std::string body;
};
void EncodeMetricsReply(WireWriter& w, const MetricsReply& msg);
Status DecodeMetricsReply(WireReader& r, MetricsReply* out);

/// BUDGET_OK payload: the privacy-budget ledger -- per-tenant spend with
/// the two-phase reservation counters, plus the daemon's durability state
/// (journal/snapshot telemetry and what the last recovery replayed). The
/// BUDGET request itself carries no payload, like STATS.
struct BudgetReply {
  struct TenantRow {
    std::string name;
    PrivacyBudget total;
    PrivacyBudget spent;
    PrivacyBudget remaining;
    /// Spend inherited from reserves left dangling by a crash (already
    /// included in `spent`).
    PrivacyBudget recovered;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t refunded = 0;
    std::uint64_t open = 0;
    std::uint64_t recovered_reserves = 0;
  };
  std::vector<TenantRow> tenants;
  /// False when the daemon runs without --state-dir: everything below the
  /// flag is zero and the ledger dies with the process.
  bool durable = false;
  std::string state_dir;
  std::string fsync_policy;  // "always" | "batch" | "off"
  std::uint64_t journal_records = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t journal_lag_records = 0;  // appends not yet fsynced
  std::uint64_t snapshots = 0;
  std::uint64_t open_reservations = 0;
  // What the startup recovery replay saw.
  std::uint64_t recovered_records = 0;
  std::uint64_t recovered_reserves = 0;
  std::uint64_t torn_bytes_discarded = 0;
  double recovery_seconds = 0.0;
};
void EncodeBudgetReply(WireWriter& w, const BudgetReply& msg);
Status DecodeBudgetReply(WireReader& r, BudgetReply* out);

}  // namespace net
}  // namespace htdp

#endif  // HTDP_NET_SERIALIZE_H_
