#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "net/wire_status.h"

namespace htdp {
namespace net {
namespace {

constexpr std::size_t kClientReadChunk = 64 * 1024;

Status UnexpectedFrame(const Frame& frame) {
  return Status::InvalidProblem(std::string("unexpected ") +
                                FrameTypeName(frame.type) +
                                " frame from the server");
}

}  // namespace

double RetryBackoffMs(const RetryPolicy& policy, int attempt,
                      std::uint32_t server_hint_ms, FaultRng& jitter) {
  double base = policy.initial_backoff_ms;
  for (int i = 0; i < attempt && base < policy.max_backoff_ms; ++i) {
    base *= policy.backoff_multiplier;
  }
  base = std::min(base, policy.max_backoff_ms);
  // The server knows its backlog better than our exponent does; never come
  // back sooner than it asked.
  base = std::max(base, static_cast<double>(server_hint_ms));
  // Deterministic jitter to [50%, 100%]: spreads a thundering herd while
  // keeping every schedule replayable from its seed.
  return base * (0.5 + 0.5 * jitter.NextUniform());
}

StatusOr<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                  std::uint16_t port,
                                                  std::size_t max_payload) {
  return ConnectWith([host, port] { return DialStream(host, port); },
                     max_payload);
}

StatusOr<std::unique_ptr<Client>> Client::ConnectWith(
    StreamFactory factory, std::size_t max_payload) {
  IgnoreSigpipeOnce();
  StatusOr<std::unique_ptr<ByteStream>> stream = factory();
  HTDP_RETURN_IF_ERROR(stream.status());
  return std::unique_ptr<Client>(new Client(std::move(stream).value(),
                                            std::move(factory), max_payload));
}

Status Client::Reconnect() {
  StatusOr<std::unique_ptr<ByteStream>> stream = factory_();
  if (!stream.ok()) {
    // Still down; stay broken so the retry loop keeps trying.
    return Status::Unavailable("reconnect failed: " +
                               stream.status().ToString());
  }
  stream_ = std::move(stream).value();
  decoder_ = FrameDecoder(max_payload_);
  broken_ = false;
  // Per-connection protocol state is void on the new connection. Completed
  // results already collected stay collectable; half-assembled ones are
  // lost (their submits will be retried).
  streamed_.clear();
  assembling_.clear();
  pushed_states_.clear();
  return Status::Ok();
}

Status Client::MarkBroken(Status transport_error) {
  broken_ = true;
  if (transport_error.code() == StatusCode::kUnavailable) {
    return transport_error;
  }
  return Status::Unavailable("connection failure: " +
                             transport_error.ToString());
}

Status Client::ErrorFromFrame(const Frame& frame) {
  WireReader reader(frame.payload);
  WireError error;
  HTDP_RETURN_IF_ERROR(DecodeError(reader, &error));
  last_retry_after_ms_ = error.retry_after_ms;
  return StatusFromWire(error.wire_code, std::move(error.message));
}

Status Client::SendFrame(FrameType type,
                         const std::vector<std::uint8_t>& payload) {
  if (broken_) {
    return Status::Unavailable("connection is broken; Reconnect() first");
  }
  std::vector<std::uint8_t> frame = EncodeFrame(type, payload, max_payload_);
  Status sent = stream_->Send(frame.data(), frame.size());
  if (!sent.ok()) return MarkBroken(std::move(sent));
  return Status::Ok();
}

StatusOr<Frame> Client::ReadFrame() {
  if (broken_) {
    return Status::Unavailable("connection is broken; Reconnect() first");
  }
  std::uint8_t buffer[kClientReadChunk];
  while (true) {
    std::optional<Frame> frame;
    HTDP_RETURN_IF_ERROR(decoder_.Next(&frame));
    if (frame.has_value()) return std::move(*frame);

    StatusOr<std::size_t> got = stream_->Recv(buffer, sizeof(buffer));
    if (!got.ok()) return MarkBroken(got.status());
    if (got.value() == 0) {
      // Retryable by the protocol's idempotence contract: whatever request
      // was in flight can be resubmitted verbatim on a fresh connection.
      return MarkBroken(Status::Unavailable(
          "server closed the connection mid-conversation"));
    }
    decoder_.Feed(buffer, got.value());
  }
}

Status Client::AbsorbPush(const Frame& frame) {
  WireReader reader(frame.payload);
  switch (frame.type) {
    case FrameType::kJobState: {
      JobStateMsg msg;
      HTDP_RETURN_IF_ERROR(DecodeJobState(reader, &msg));
      pushed_states_[msg.job_id] = std::move(msg);
      return Status::Ok();
    }
    case FrameType::kResultChunk: {
      ResultChunk chunk;
      HTDP_RETURN_IF_ERROR(DecodeResultChunk(reader, &chunk));
      std::vector<std::uint8_t>& bytes = assembling_[chunk.job_id];
      bytes.insert(bytes.end(), chunk.bytes.begin(), chunk.bytes.end());
      return Status::Ok();
    }
    case FrameType::kResultEnd: {
      ResultEnd end;
      HTDP_RETURN_IF_ERROR(DecodeResultEnd(reader, &end));
      std::vector<std::uint8_t> bytes = std::move(assembling_[end.job_id]);
      assembling_.erase(end.job_id);
      if (bytes.size() != end.total_bytes) {
        return Status::InvalidProblem(
            "result stream for job " + std::to_string(end.job_id) +
            " delivered " + std::to_string(bytes.size()) +
            " bytes but declared " + std::to_string(end.total_bytes));
      }
      finished_[end.job_id] = std::move(bytes);
      return Status::Ok();
    }
    default:
      return UnexpectedFrame(frame);
  }
}

StatusOr<Frame> Client::ReadReply(std::uint64_t expect_job) {
  while (true) {
    StatusOr<Frame> frame = ReadFrame();
    HTDP_RETURN_IF_ERROR(frame.status());
    switch (frame.value().type) {
      case FrameType::kResultChunk:
      case FrameType::kResultEnd:
        HTDP_RETURN_IF_ERROR(AbsorbPush(frame.value()));
        continue;
      case FrameType::kJobState: {
        // A JOB_STATE about some other job is a push for a streamed job;
        // about `expect_job` it is the reply we are waiting for.
        WireReader peek(frame.value().payload);
        JobStateMsg msg;
        HTDP_RETURN_IF_ERROR(DecodeJobState(peek, &msg));
        if (msg.job_id != expect_job) {
          pushed_states_[msg.job_id] = std::move(msg);
          continue;
        }
        return frame;
      }
      default:
        return frame;
    }
  }
}

StatusOr<std::uint64_t> Client::Submit(const SubmitRequest& request) {
  WireWriter writer;
  EncodeSubmit(writer, request);
  HTDP_RETURN_IF_ERROR(SendFrame(FrameType::kSubmit, writer.bytes()));

  StatusOr<Frame> reply = ReadReply(0);
  HTDP_RETURN_IF_ERROR(reply.status());
  WireReader reader(reply.value().payload);
  if (reply.value().type == FrameType::kError) {
    return ErrorFromFrame(reply.value());
  }
  if (reply.value().type != FrameType::kSubmitOk) {
    return UnexpectedFrame(reply.value());
  }
  SubmitOk ok;
  HTDP_RETURN_IF_ERROR(DecodeSubmitOk(reader, &ok));
  if (request.stream) streamed_.insert(ok.job_id);
  last_job_id_ = ok.job_id;
  return ok.job_id;
}

StatusOr<JobStateMsg> Client::Poll(std::uint64_t job_id, bool deliver) {
  WireWriter writer;
  EncodePoll(writer, PollRequest{job_id, deliver});
  HTDP_RETURN_IF_ERROR(SendFrame(FrameType::kPoll, writer.bytes()));

  StatusOr<Frame> reply = ReadReply(job_id);
  HTDP_RETURN_IF_ERROR(reply.status());
  WireReader reader(reply.value().payload);
  if (reply.value().type == FrameType::kError) {
    return ErrorFromFrame(reply.value());
  }
  if (reply.value().type != FrameType::kJobState) {
    return UnexpectedFrame(reply.value());
  }
  JobStateMsg msg;
  HTDP_RETURN_IF_ERROR(DecodeJobState(reader, &msg));
  return msg;
}

StatusOr<FitResult> Client::CollectResult(std::uint64_t job_id) {
  while (finished_.find(job_id) == finished_.end()) {
    StatusOr<Frame> frame = ReadFrame();
    HTDP_RETURN_IF_ERROR(frame.status());
    HTDP_RETURN_IF_ERROR(AbsorbPush(frame.value()));
  }
  std::vector<std::uint8_t> bytes = std::move(finished_[job_id]);
  finished_.erase(job_id);
  WireReader reader(bytes.data(), bytes.size());
  FitResult result;
  HTDP_RETURN_IF_ERROR(DecodeFitResult(reader, &result));
  return result;
}

StatusOr<FitResult> Client::WaitResult(std::uint64_t job_id) {
  while (true) {
    StatusOr<JobStateMsg> state = Poll(job_id, /*deliver=*/true);
    HTDP_RETURN_IF_ERROR(state.status());
    switch (state.value().state) {
      case WireJobState::kInFlight:
        // The server parks deliver-polls until completion, so this loop
        // does not spin; a plain re-poll is just a retry after a spurious
        // in-flight report.
        continue;
      case WireJobState::kDoneError:
        return StatusFromWire(state.value().wire_code,
                              std::move(state.value().message));
      case WireJobState::kDoneOk:
        return CollectResult(job_id);
    }
  }
}

StatusOr<FitResult> Client::AwaitStreamed(std::uint64_t job_id) {
  while (true) {
    auto done = pushed_states_.find(job_id);
    if (done != pushed_states_.end() &&
        done->second.state != WireJobState::kInFlight) {
      JobStateMsg msg = std::move(done->second);
      pushed_states_.erase(done);
      if (msg.state == WireJobState::kDoneError) {
        return StatusFromWire(msg.wire_code, std::move(msg.message));
      }
      return CollectResult(job_id);
    }
    StatusOr<Frame> frame = ReadFrame();
    HTDP_RETURN_IF_ERROR(frame.status());
    HTDP_RETURN_IF_ERROR(AbsorbPush(frame.value()));
  }
}

StatusOr<JobStateMsg> Client::Cancel(std::uint64_t job_id) {
  WireWriter writer;
  EncodeCancel(writer, CancelRequest{job_id});
  HTDP_RETURN_IF_ERROR(SendFrame(FrameType::kCancel, writer.bytes()));

  StatusOr<Frame> reply = ReadReply(job_id);
  HTDP_RETURN_IF_ERROR(reply.status());
  WireReader reader(reply.value().payload);
  if (reply.value().type == FrameType::kError) {
    return ErrorFromFrame(reply.value());
  }
  if (reply.value().type != FrameType::kJobState) {
    return UnexpectedFrame(reply.value());
  }
  JobStateMsg msg;
  HTDP_RETURN_IF_ERROR(DecodeJobState(reader, &msg));
  return msg;
}

StatusOr<StatsReply> Client::Stats() {
  HTDP_RETURN_IF_ERROR(SendFrame(FrameType::kStats, {}));
  StatusOr<Frame> reply = ReadReply(0);
  HTDP_RETURN_IF_ERROR(reply.status());
  WireReader reader(reply.value().payload);
  if (reply.value().type == FrameType::kError) {
    return ErrorFromFrame(reply.value());
  }
  if (reply.value().type != FrameType::kStatsOk) {
    return UnexpectedFrame(reply.value());
  }
  StatsReply stats;
  HTDP_RETURN_IF_ERROR(DecodeStats(reader, &stats));
  return stats;
}

StatusOr<BudgetReply> Client::Budget() {
  HTDP_RETURN_IF_ERROR(SendFrame(FrameType::kBudget, {}));
  StatusOr<Frame> reply = ReadReply(0);
  HTDP_RETURN_IF_ERROR(reply.status());
  WireReader reader(reply.value().payload);
  if (reply.value().type == FrameType::kError) {
    return ErrorFromFrame(reply.value());
  }
  if (reply.value().type != FrameType::kBudgetOk) {
    return UnexpectedFrame(reply.value());
  }
  BudgetReply budget;
  HTDP_RETURN_IF_ERROR(DecodeBudgetReply(reader, &budget));
  return budget;
}

StatusOr<MetricsReply> Client::Metrics(MetricsFormat format) {
  WireWriter writer;
  MetricsRequest request;
  request.format = format;
  EncodeMetrics(writer, request);
  HTDP_RETURN_IF_ERROR(SendFrame(FrameType::kMetrics, writer.bytes()));
  StatusOr<Frame> reply = ReadReply(0);
  HTDP_RETURN_IF_ERROR(reply.status());
  WireReader reader(reply.value().payload);
  if (reply.value().type == FrameType::kError) {
    return ErrorFromFrame(reply.value());
  }
  if (reply.value().type != FrameType::kMetricsOk) {
    return UnexpectedFrame(reply.value());
  }
  MetricsReply metrics;
  HTDP_RETURN_IF_ERROR(DecodeMetricsReply(reader, &metrics));
  return metrics;
}

StatusOr<FitResult> Client::SubmitAndWaitWithRetry(
    const SubmitRequest& request, const RetryPolicy& policy) {
  const auto start = std::chrono::steady_clock::now();
  FaultRng jitter(policy.jitter_seed);
  Status last = Status::Unavailable("no attempts were made");
  for (int attempt = 0;
       policy.max_attempts <= 0 || attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_used_;
      double wait_ms =
          RetryBackoffMs(policy, attempt - 1, last_retry_after_ms_, jitter);
      last_retry_after_ms_ = 0;  // the hint applies to exactly one retry
      if (policy.deadline_seconds > 0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        const double budget_ms =
            (policy.deadline_seconds - elapsed) * 1000.0;
        if (budget_ms <= 0) break;  // out of time: report the last failure
        wait_ms = std::min(wait_ms, budget_ms);
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(wait_ms));
    }
    if (broken_) {
      Status reconnected = Reconnect();
      if (!reconnected.ok()) {
        last = std::move(reconnected);
        continue;
      }
    }
    StatusOr<std::uint64_t> id = Submit(request);
    if (!id.ok()) {
      if (!IsRetryable(id.status().code())) return id.status();
      last = id.status();
      continue;
    }
    StatusOr<FitResult> result = request.stream ? AwaitStreamed(id.value())
                                                : WaitResult(id.value());
    if (result.ok() || !IsRetryable(result.status().code())) return result;
    // The connection died between SUBMIT_OK and the result. The job may
    // still be running server-side; the retry resubmits, and determinism
    // at the fixed seed makes the re-run's bits identical.
    last = result.status();
  }
  return last;
}

StatusOr<SolverListReply> Client::ListSolvers() {
  HTDP_RETURN_IF_ERROR(SendFrame(FrameType::kListSolvers, {}));
  StatusOr<Frame> reply = ReadReply(0);
  HTDP_RETURN_IF_ERROR(reply.status());
  WireReader reader(reply.value().payload);
  if (reply.value().type == FrameType::kError) {
    return ErrorFromFrame(reply.value());
  }
  if (reply.value().type != FrameType::kSolverList) {
    return UnexpectedFrame(reply.value());
  }
  SolverListReply list;
  HTDP_RETURN_IF_ERROR(DecodeSolverList(reader, &list));
  return list;
}

}  // namespace net
}  // namespace htdp
