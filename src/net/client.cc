#include "net/client.h"

#include <utility>

#include "net/wire_status.h"

namespace htdp {
namespace net {
namespace {

constexpr std::size_t kClientReadChunk = 64 * 1024;

Status UnexpectedFrame(const Frame& frame) {
  return Status::InvalidProblem(std::string("unexpected ") +
                                FrameTypeName(frame.type) +
                                " frame from the server");
}

}  // namespace

StatusOr<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                  std::uint16_t port,
                                                  std::size_t max_payload) {
  IgnoreSigpipeOnce();
  StatusOr<UniqueFd> fd = DialTcp(host, port);
  HTDP_RETURN_IF_ERROR(fd.status());
  return std::unique_ptr<Client>(
      new Client(std::move(fd).value(), max_payload));
}

Status Client::SendFrame(FrameType type,
                         const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame = EncodeFrame(type, payload, max_payload_);
  return SendAll(fd_.get(), frame.data(), frame.size());
}

StatusOr<Frame> Client::ReadFrame() {
  std::uint8_t buffer[kClientReadChunk];
  while (true) {
    std::optional<Frame> frame;
    HTDP_RETURN_IF_ERROR(decoder_.Next(&frame));
    if (frame.has_value()) return std::move(*frame);

    StatusOr<std::size_t> got =
        RecvSome(fd_.get(), buffer, sizeof(buffer));
    HTDP_RETURN_IF_ERROR(got.status());
    if (got.value() == 0) {
      return Status::InvalidProblem(
          "server closed the connection mid-conversation");
    }
    decoder_.Feed(buffer, got.value());
  }
}

Status Client::AbsorbPush(const Frame& frame) {
  WireReader reader(frame.payload);
  switch (frame.type) {
    case FrameType::kJobState: {
      JobStateMsg msg;
      HTDP_RETURN_IF_ERROR(DecodeJobState(reader, &msg));
      pushed_states_[msg.job_id] = std::move(msg);
      return Status::Ok();
    }
    case FrameType::kResultChunk: {
      ResultChunk chunk;
      HTDP_RETURN_IF_ERROR(DecodeResultChunk(reader, &chunk));
      std::vector<std::uint8_t>& bytes = assembling_[chunk.job_id];
      bytes.insert(bytes.end(), chunk.bytes.begin(), chunk.bytes.end());
      return Status::Ok();
    }
    case FrameType::kResultEnd: {
      ResultEnd end;
      HTDP_RETURN_IF_ERROR(DecodeResultEnd(reader, &end));
      std::vector<std::uint8_t> bytes = std::move(assembling_[end.job_id]);
      assembling_.erase(end.job_id);
      if (bytes.size() != end.total_bytes) {
        return Status::InvalidProblem(
            "result stream for job " + std::to_string(end.job_id) +
            " delivered " + std::to_string(bytes.size()) +
            " bytes but declared " + std::to_string(end.total_bytes));
      }
      finished_[end.job_id] = std::move(bytes);
      return Status::Ok();
    }
    default:
      return UnexpectedFrame(frame);
  }
}

StatusOr<Frame> Client::ReadReply(std::uint64_t expect_job) {
  while (true) {
    StatusOr<Frame> frame = ReadFrame();
    HTDP_RETURN_IF_ERROR(frame.status());
    switch (frame.value().type) {
      case FrameType::kResultChunk:
      case FrameType::kResultEnd:
        HTDP_RETURN_IF_ERROR(AbsorbPush(frame.value()));
        continue;
      case FrameType::kJobState: {
        // A JOB_STATE about some other job is a push for a streamed job;
        // about `expect_job` it is the reply we are waiting for.
        WireReader peek(frame.value().payload);
        JobStateMsg msg;
        HTDP_RETURN_IF_ERROR(DecodeJobState(peek, &msg));
        if (msg.job_id != expect_job) {
          pushed_states_[msg.job_id] = std::move(msg);
          continue;
        }
        return frame;
      }
      default:
        return frame;
    }
  }
}

StatusOr<std::uint64_t> Client::Submit(const SubmitRequest& request) {
  WireWriter writer;
  EncodeSubmit(writer, request);
  HTDP_RETURN_IF_ERROR(SendFrame(FrameType::kSubmit, writer.bytes()));

  StatusOr<Frame> reply = ReadReply(0);
  HTDP_RETURN_IF_ERROR(reply.status());
  WireReader reader(reply.value().payload);
  if (reply.value().type == FrameType::kError) {
    WireError error;
    HTDP_RETURN_IF_ERROR(DecodeError(reader, &error));
    return StatusFromWire(error.wire_code, std::move(error.message));
  }
  if (reply.value().type != FrameType::kSubmitOk) {
    return UnexpectedFrame(reply.value());
  }
  SubmitOk ok;
  HTDP_RETURN_IF_ERROR(DecodeSubmitOk(reader, &ok));
  if (request.stream) streamed_.insert(ok.job_id);
  return ok.job_id;
}

StatusOr<JobStateMsg> Client::Poll(std::uint64_t job_id, bool deliver) {
  WireWriter writer;
  EncodePoll(writer, PollRequest{job_id, deliver});
  HTDP_RETURN_IF_ERROR(SendFrame(FrameType::kPoll, writer.bytes()));

  StatusOr<Frame> reply = ReadReply(job_id);
  HTDP_RETURN_IF_ERROR(reply.status());
  WireReader reader(reply.value().payload);
  if (reply.value().type == FrameType::kError) {
    WireError error;
    HTDP_RETURN_IF_ERROR(DecodeError(reader, &error));
    return StatusFromWire(error.wire_code, std::move(error.message));
  }
  if (reply.value().type != FrameType::kJobState) {
    return UnexpectedFrame(reply.value());
  }
  JobStateMsg msg;
  HTDP_RETURN_IF_ERROR(DecodeJobState(reader, &msg));
  return msg;
}

StatusOr<FitResult> Client::CollectResult(std::uint64_t job_id) {
  while (finished_.find(job_id) == finished_.end()) {
    StatusOr<Frame> frame = ReadFrame();
    HTDP_RETURN_IF_ERROR(frame.status());
    HTDP_RETURN_IF_ERROR(AbsorbPush(frame.value()));
  }
  std::vector<std::uint8_t> bytes = std::move(finished_[job_id]);
  finished_.erase(job_id);
  WireReader reader(bytes.data(), bytes.size());
  FitResult result;
  HTDP_RETURN_IF_ERROR(DecodeFitResult(reader, &result));
  return result;
}

StatusOr<FitResult> Client::WaitResult(std::uint64_t job_id) {
  while (true) {
    StatusOr<JobStateMsg> state = Poll(job_id, /*deliver=*/true);
    HTDP_RETURN_IF_ERROR(state.status());
    switch (state.value().state) {
      case WireJobState::kInFlight:
        // The server parks deliver-polls until completion, so this loop
        // does not spin; a plain re-poll is just a retry after a spurious
        // in-flight report.
        continue;
      case WireJobState::kDoneError:
        return StatusFromWire(state.value().wire_code,
                              std::move(state.value().message));
      case WireJobState::kDoneOk:
        return CollectResult(job_id);
    }
  }
}

StatusOr<FitResult> Client::AwaitStreamed(std::uint64_t job_id) {
  while (true) {
    auto done = pushed_states_.find(job_id);
    if (done != pushed_states_.end() &&
        done->second.state != WireJobState::kInFlight) {
      JobStateMsg msg = std::move(done->second);
      pushed_states_.erase(done);
      if (msg.state == WireJobState::kDoneError) {
        return StatusFromWire(msg.wire_code, std::move(msg.message));
      }
      return CollectResult(job_id);
    }
    StatusOr<Frame> frame = ReadFrame();
    HTDP_RETURN_IF_ERROR(frame.status());
    HTDP_RETURN_IF_ERROR(AbsorbPush(frame.value()));
  }
}

StatusOr<JobStateMsg> Client::Cancel(std::uint64_t job_id) {
  WireWriter writer;
  EncodeCancel(writer, CancelRequest{job_id});
  HTDP_RETURN_IF_ERROR(SendFrame(FrameType::kCancel, writer.bytes()));

  StatusOr<Frame> reply = ReadReply(job_id);
  HTDP_RETURN_IF_ERROR(reply.status());
  WireReader reader(reply.value().payload);
  if (reply.value().type == FrameType::kError) {
    WireError error;
    HTDP_RETURN_IF_ERROR(DecodeError(reader, &error));
    return StatusFromWire(error.wire_code, std::move(error.message));
  }
  if (reply.value().type != FrameType::kJobState) {
    return UnexpectedFrame(reply.value());
  }
  JobStateMsg msg;
  HTDP_RETURN_IF_ERROR(DecodeJobState(reader, &msg));
  return msg;
}

StatusOr<StatsReply> Client::Stats() {
  HTDP_RETURN_IF_ERROR(SendFrame(FrameType::kStats, {}));
  StatusOr<Frame> reply = ReadReply(0);
  HTDP_RETURN_IF_ERROR(reply.status());
  WireReader reader(reply.value().payload);
  if (reply.value().type == FrameType::kError) {
    WireError error;
    HTDP_RETURN_IF_ERROR(DecodeError(reader, &error));
    return StatusFromWire(error.wire_code, std::move(error.message));
  }
  if (reply.value().type != FrameType::kStatsOk) {
    return UnexpectedFrame(reply.value());
  }
  StatsReply stats;
  HTDP_RETURN_IF_ERROR(DecodeStats(reader, &stats));
  return stats;
}

StatusOr<SolverListReply> Client::ListSolvers() {
  HTDP_RETURN_IF_ERROR(SendFrame(FrameType::kListSolvers, {}));
  StatusOr<Frame> reply = ReadReply(0);
  HTDP_RETURN_IF_ERROR(reply.status());
  WireReader reader(reply.value().payload);
  if (reply.value().type == FrameType::kError) {
    WireError error;
    HTDP_RETURN_IF_ERROR(DecodeError(reader, &error));
    return StatusFromWire(error.wire_code, std::move(error.message));
  }
  if (reply.value().type != FrameType::kSolverList) {
    return UnexpectedFrame(reply.value());
  }
  SolverListReply list;
  HTDP_RETURN_IF_ERROR(DecodeSolverList(reader, &list));
  return list;
}

}  // namespace net
}  // namespace htdp
