#include "core/dp_robust_gd.h"

#include <cmath>
#include <cstddef>

#include "core/hyperparams.h"
#include "core/robust_gradient.h"
#include "dp/gaussian_mechanism.h"
#include "dp/privacy.h"
#include "util/check.h"

namespace htdp {

DpRobustGdResult MinimizeDpRobustGd(const Loss& loss, const Dataset& data,
                                    const Vector& w0,
                                    const DpRobustGdOptions& options,
                                    Rng& rng) {
  data.Validate();
  HTDP_CHECK_EQ(w0.size(), data.dim());
  PrivacyParams{options.epsilon, options.delta}.Validate();
  HTDP_CHECK_GT(options.delta, 0.0);

  const std::size_t d = data.dim();
  int iterations = options.iterations;
  double scale = options.scale;
  if (iterations <= 0 || scale <= 0.0) {
    const Alg1Schedule schedule = SolveAlg1Schedule(
        data.size(), d, options.epsilon, options.tau, 2 * d, options.zeta);
    if (iterations <= 0) iterations = schedule.iterations;
    if (scale <= 0.0) scale = schedule.scale;
  }
  HTDP_CHECK_LE(static_cast<std::size_t>(iterations), data.size());

  const RobustGradientEstimator estimator(scale, options.beta);
  const std::vector<DatasetView> folds =
      SplitIntoFolds(data, static_cast<std::size_t>(iterations));

  PgdOptions projection;
  projection.projection = options.projection;
  projection.radius = options.radius;

  DpRobustGdResult result;
  result.w = w0;
  result.iterations = iterations;
  result.scale_used = scale;

  Vector grad;
  for (int t = 1; t <= iterations; ++t) {
    const DatasetView& fold = folds[static_cast<std::size_t>(t - 1)];
    estimator.Estimate(loss, fold, result.w, grad);

    // Coordinate-wise sensitivity 4 sqrt(2) s/(3m) becomes sqrt(d) times
    // that in l2 -- the full-vector release is where poly(d) enters.
    const double l2_sensitivity = std::sqrt(static_cast<double>(d)) *
                                  estimator.Sensitivity(fold.size());
    const GaussianMechanism mechanism(l2_sensitivity, options.epsilon,
                                      options.delta);
    mechanism.PrivatizeInPlace(grad, rng);
    result.ledger.Record({"gaussian", options.epsilon, options.delta,
                          l2_sensitivity, /*fold=*/t - 1});

    const double eta = options.step > 0.0
                           ? options.step
                           : 2.0 / (static_cast<double>(t) + 2.0);
    Axpy(-eta, grad, result.w);
    ApplyProjection(projection, result.w);
  }
  return result;
}

}  // namespace htdp
