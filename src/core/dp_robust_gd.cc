// Back-compat wrapper: MinimizeDpRobustGd is now a thin adapter over the
// baseline_robust_gd Solver in src/api/, which holds the algorithm body.

#include "core/dp_robust_gd.h"

#include <memory>
#include <utility>

#include "api/api.h"
#include "util/check.h"

namespace htdp {

DpRobustGdResult MinimizeDpRobustGd(const Loss& loss, const Dataset& data,
                                    const Vector& w0,
                                    const DpRobustGdOptions& options,
                                    Rng& rng) {
  static const std::unique_ptr<const Solver> solver =
      CreateBaselineRobustGdSolver();

  HTDP_CHECK_EQ(w0.size(), data.dim());
  Problem problem;
  problem.loss = &loss;
  problem.data = &data;
  problem.w0 = w0;

  SolverSpec spec;
  spec.budget = PrivacyBudget::Approx(options.epsilon, options.delta);
  spec.iterations = options.iterations;
  spec.scale = options.scale;
  spec.beta = options.beta;
  spec.tau = options.tau;
  spec.zeta = options.zeta;
  spec.step = options.step;
  spec.projection = options.projection;
  spec.radius = options.radius;

  FitResult fit = solver->Fit(problem, spec, rng);

  DpRobustGdResult result;
  result.w = std::move(fit.w);
  result.ledger = std::move(fit.ledger);
  result.iterations = fit.iterations;
  result.scale_used = fit.scale_used;
  return result;
}

}  // namespace htdp
