#include "core/minimax.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>

#include "util/check.h"

namespace htdp {
namespace {

// p = (1/(n eps)) min{ (s/2) log((d-s)/(s/2)) - eps,
//                      log((1 - e^-eps) / (4 delta e^eps)) }, clamped to
// (0, 1].
double SolveContamination(std::size_t n, std::size_t d, std::size_t s,
                          double epsilon, double delta) {
  const double packing_term =
      0.5 * static_cast<double>(s) *
          std::log(static_cast<double>(d - s) /
                   (0.5 * static_cast<double>(s))) -
      epsilon;
  const double delta_term =
      std::log((1.0 - std::exp(-epsilon)) / (4.0 * delta * std::exp(epsilon)));
  double p = std::min(packing_term, delta_term) /
             (static_cast<double>(n) * epsilon);
  return std::clamp(p, 1e-12, 1.0);
}

}  // namespace

SparseMeanHardFamily::SparseMeanHardFamily(std::size_t d, std::size_t sparsity,
                                           std::size_t family_size, double tau,
                                           double epsilon, double delta,
                                           std::size_t n, Rng& rng)
    : d_(d), sparsity_(sparsity), tau_(tau) {
  HTDP_CHECK_GE(sparsity, 2u);
  HTDP_CHECK_LE(sparsity, d / 2);
  HTDP_CHECK_GT(tau, 0.0);
  HTDP_CHECK_GT(epsilon, 0.0);
  HTDP_CHECK(delta > 0.0 && delta < 1.0) << "delta=" << delta;
  HTDP_CHECK_GE(family_size, 2u);

  p_ = SolveContamination(n, d, sparsity, epsilon, delta);
  atom_magnitude_ =
      std::sqrt(tau / p_) / std::sqrt(2.0 * static_cast<double>(sparsity));

  // Greedy packing: draw random signed s-sparse patterns, keep those at
  // Hamming distance >= s/2 from every kept member (Lemma 11 guarantees an
  // exponentially large packing exists, so the greedy loop fills quickly).
  const std::size_t max_attempts = family_size * 200;
  std::vector<std::size_t> order(d);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t attempt = 0;
       attempt < max_attempts && members_.size() < family_size; ++attempt) {
    // Sample a support of size s via partial Fisher-Yates.
    for (std::size_t j = 0; j < sparsity; ++j) {
      const std::size_t pick =
          j + static_cast<std::size_t>(rng.UniformInt(d - j));
      std::swap(order[j], order[pick]);
    }
    Member candidate;
    candidate.indices.assign(order.begin(),
                             order.begin() + static_cast<long>(sparsity));
    std::sort(candidate.indices.begin(), candidate.indices.end());
    candidate.signs.resize(sparsity);
    for (int& sign : candidate.signs) {
      sign = (rng.UniformInt(2) == 0) ? 1 : -1;
    }

    bool separated = true;
    for (const Member& member : members_) {
      // Hamming distance between the two sign patterns in {-1,0,1}^d.
      std::size_t same = 0;
      std::size_t mi = 0;
      for (std::size_t ci = 0; ci < sparsity && mi < sparsity;) {
        if (candidate.indices[ci] == member.indices[mi]) {
          if (candidate.signs[ci] == member.signs[mi]) ++same;
          ++ci;
          ++mi;
        } else if (candidate.indices[ci] < member.indices[mi]) {
          ++ci;
        } else {
          ++mi;
        }
      }
      // Positions differing: everything except identical (index, sign) pairs
      // counts toward the distance; distance = 2s - 2*matching coordinates
      // where both have the same index (regardless of sign) minus ... we use
      // the conservative count: differing positions >= 2 (s - same) - s = s -
      // 2*overlap_same. Simpler exact rule: distance = (s - same) counted on
      // the union of supports.
      std::size_t union_size = 2 * sparsity;
      {
        std::size_t overlap = 0;
        std::size_t a = 0;
        std::size_t b = 0;
        while (a < sparsity && b < sparsity) {
          if (candidate.indices[a] == member.indices[b]) {
            ++overlap;
            ++a;
            ++b;
          } else if (candidate.indices[a] < member.indices[b]) {
            ++a;
          } else {
            ++b;
          }
        }
        union_size = 2 * sparsity - overlap;
      }
      const std::size_t distance = union_size - same;
      if (distance < sparsity / 2) {
        separated = false;
        break;
      }
    }
    if (separated) members_.push_back(std::move(candidate));
  }
  HTDP_CHECK_GE(members_.size(), 2u)
      << "failed to build a packing; increase d or reduce sparsity";
}

Vector SparseMeanHardFamily::Mean(std::size_t v) const {
  HTDP_CHECK_LT(v, members_.size());
  Vector mean(d_, 0.0);
  const double magnitude = p_ * atom_magnitude_;
  for (std::size_t j = 0; j < sparsity_; ++j) {
    mean[members_[v].indices[j]] =
        magnitude * static_cast<double>(members_[v].signs[j]);
  }
  return mean;
}

Dataset SparseMeanHardFamily::Sample(std::size_t v, std::size_t n,
                                     Rng& rng) const {
  HTDP_CHECK_LT(v, members_.size());
  HTDP_CHECK_GT(n, 0u);
  Dataset data;
  data.x = Matrix(n, d_);
  data.y.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.UniformUnit() < p_) {
      double* row = data.x.Row(i);
      for (std::size_t j = 0; j < sparsity_; ++j) {
        row[members_[v].indices[j]] =
            atom_magnitude_ * static_cast<double>(members_[v].signs[j]);
      }
    }
    // Otherwise the row stays the P_0 atom: all zeros.
  }
  return data;
}

double SparseMeanHardFamily::MinSeparationSquared() const {
  double best = 1e300;
  for (std::size_t a = 0; a < members_.size(); ++a) {
    const Vector mean_a = Mean(a);
    for (std::size_t b = a + 1; b < members_.size(); ++b) {
      best = std::min(best, NormL2Squared(Sub(mean_a, Mean(b))));
    }
  }
  return best;
}

double SparseMeanHardFamily::LowerBound(std::size_t n, std::size_t d,
                                        std::size_t sparsity, double epsilon,
                                        double delta, double tau) {
  HTDP_CHECK_GT(n, 0u);
  HTDP_CHECK_GT(sparsity, 0u);
  HTDP_CHECK_LT(sparsity, d);
  const double s_log_d = static_cast<double>(sparsity) *
                         std::log(static_cast<double>(d));
  const double log_inv_delta = std::log(1.0 / delta);
  return tau * std::min(s_log_d, log_inv_delta) /
         (4.0 * static_cast<double>(n) * epsilon);
}

}  // namespace htdp
