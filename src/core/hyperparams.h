#ifndef HTDP_CORE_HYPERPARAMS_H_
#define HTDP_CORE_HYPERPARAMS_H_

#include <cstddef>

#include "dp/privacy.h"
#include "util/status.h"

namespace htdp {

/// Theory-driven default hyper-parameter schedules for the four algorithms,
/// following Theorems 2, 5, 7 and 8 plus the experimental settings of
/// Section 6.2. Where the paper's experimental constants contradict its own
/// theorems (the literal "s = floor(n eps)" for Algorithm 1 and
/// "k = c2 n eps" for Algorithm 5 degenerate the bias/noise trade-off), the
/// theorem-driven value is used; see DESIGN.md section 3 and EXPERIMENTS.md.
///
/// Two entry points per schedule:
///   SolveAlgX...   -- legacy, HTDP_CHECK-aborts on invalid arguments and
///                     clamps borderline inputs (T floored at 1, capped at n)
///                     so it always returns a usable schedule.
///   TrySolveAlgX.. -- strict, returns an error Status on degenerate inputs
///                     (n * epsilon < 1, target_sparsity == 0, zeta outside
///                     (0, 1), non-finite results) instead of proceeding.
///                     SolverSpec::Resolve uses these, which is what makes
///                     the facade guarantee T >= 1, s >= 1 and finite
///                     positive scales. The strict solvers take the typed
///                     PrivacyBudget (dp/privacy.h) -- the same budget type
///                     the accountant splits and the ledger audits -- and
///                     validate it with PrivacyBudget::Check before the
///                     n * epsilon fundability floor.

/// Algorithm 1 (Theorem 2 / Section 6.2).
struct Alg1Schedule {
  int iterations = 1;    // T = floor((n eps)^(1/3)), at least 1
  double scale = 1.0;    // s = sqrt(n eps tau / (T log(|V| d T / zeta)))
  double beta = 1.0;     // beta = O(1)
};
Alg1Schedule SolveAlg1Schedule(std::size_t n, std::size_t d, double epsilon,
                               double tau, std::size_t num_vertices,
                               double zeta);
Status TrySolveAlg1Schedule(std::size_t n, std::size_t d,
                            const PrivacyBudget& budget, double tau,
                            std::size_t num_vertices, double zeta,
                            Alg1Schedule* out);

/// Algorithm 1 variant for the non-convex robust regression of Theorem 3:
/// T = sqrt(n eps / log(d/zeta)), fixed step eta = 1/sqrt(T),
/// s = sqrt(n eps / (sqrt(T) log(d T / zeta))).
struct Alg1RobustSchedule {
  int iterations = 1;
  double scale = 1.0;
  double beta = 1.0;
  double step = 1.0;  // fixed eta
};
Alg1RobustSchedule SolveAlg1RobustSchedule(std::size_t n, std::size_t d,
                                           double epsilon, double zeta);
Status TrySolveAlg1RobustSchedule(std::size_t n, std::size_t d,
                                  const PrivacyBudget& budget, double zeta,
                                  Alg1RobustSchedule* out);

/// Algorithm 2 (Theorem 5 / Section 6.2).
struct Alg2Schedule {
  int iterations = 1;    // T = ceil((n eps)^(2/5))
  double shrinkage = 1.0;  // K = (n eps)^(1/4) / T^(1/8)
};
Alg2Schedule SolveAlg2Schedule(std::size_t n, double epsilon);
Status TrySolveAlg2Schedule(std::size_t n, const PrivacyBudget& budget,
                            Alg2Schedule* out);

/// Algorithm 3 (Theorem 7 / Section 6.2).
struct Alg3Schedule {
  int iterations = 1;      // T = floor(log n), at least 1
  std::size_t sparsity = 1;  // s = multiplier * s_star
  double shrinkage = 1.0;  // K = (n eps / (s T))^(1/4)
  double step = 0.5;       // eta0 (Section 6.2 uses 0.5)
};
Alg3Schedule SolveAlg3Schedule(std::size_t n, double epsilon,
                               std::size_t target_sparsity, int multiplier);
Status TrySolveAlg3Schedule(std::size_t n, const PrivacyBudget& budget,
                            std::size_t target_sparsity, int multiplier,
                            Alg3Schedule* out);

/// The Algorithm 3 shrinkage rule K = (n eps / (s T))^(1/4) alone, for
/// recomputing K against a caller-pinned (s, T) pair. The single source of
/// truth shared with SolveAlg3Schedule.
Status TrySolveAlg3Shrinkage(std::size_t n, const PrivacyBudget& budget,
                             std::size_t sparsity, int iterations,
                             double* shrinkage);

/// Algorithm 4 (Peeling) as a standalone screening primitive: the entrywise
/// shrinkage threshold K = (n eps)^(1/4) bounding each sample's influence
/// on the released coordinate means. Shares the n * epsilon >= 1 floor with
/// every other strict schedule solver.
Status TrySolvePeelingShrinkage(std::size_t n, const PrivacyBudget& budget,
                                double* shrinkage);

/// Algorithm 5 (Theorem 8 / Section 6.2).
struct Alg5Schedule {
  int iterations = 1;      // T = floor(log n), at least 1
  std::size_t sparsity = 1;  // s = 2 s* (Section 6.2)
  double scale = 1.0;      // k = (n^2 eps^2 tau^2 / ((sT)^2 log(Ts/zeta)))^(1/4)
  double beta = 1.0;
  double step = 0.5;       // eta (Section 6.2 uses 0.5)
};
Alg5Schedule SolveAlg5Schedule(std::size_t n, std::size_t d, double epsilon,
                               double tau, std::size_t target_sparsity,
                               double zeta);
Status TrySolveAlg5Schedule(std::size_t n, std::size_t d,
                            const PrivacyBudget& budget, double tau,
                            std::size_t target_sparsity, double zeta,
                            Alg5Schedule* out);

}  // namespace htdp

#endif  // HTDP_CORE_HYPERPARAMS_H_
