#ifndef HTDP_CORE_HT_PRIVATE_LASSO_H_
#define HTDP_CORE_HT_PRIVATE_LASSO_H_

#include <vector>

#include "data/dataset.h"
#include "dp/privacy_ledger.h"
#include "linalg/vector_ops.h"
#include "optim/polytope.h"
#include "rng/rng.h"

namespace htdp {

/// Algorithm 2: Heavy-tailed Private LASSO ((epsilon, delta)-DP).
///
/// First shrinks every feature and label entrywise at threshold K
/// (x~ = sign(x) min(|x|, K)), which makes the squared loss l1-Lipschitz
/// with constant O(K^2). It then runs DP Frank-Wolfe on the full shrunken
/// data: each of the T iterations computes the exact empirical gradient
/// g~ = (2/n) sum_i x~_i (<x~_i, w> - y~_i), and runs the exponential
/// mechanism with sensitivity 4 K^2 V (V + 1) / n (V = max vertex l1 norm;
/// equals the paper's 8 ||W||_1 K^2 / n on the unit l1 ball) and per-step
/// budget epsilon / (2 sqrt(2 T log(1/delta))), so advanced composition
/// gives (epsilon, delta)-DP overall (Theorem 4). Under Assumption 3 the
/// excess risk is O~(1/(n eps)^(2/5)) (Theorem 5).
struct HtPrivateLassoOptions {
  double epsilon = 1.0;
  double delta = 1e-5;
  /// T; 0 = auto, ceil((n epsilon)^(2/5)) per Section 6.2.
  int iterations = 0;
  /// Shrinkage threshold K; 0 = auto, (n eps)^(1/4) / T^(1/8).
  double shrinkage = 0.0;
  bool record_risk_trace = false;
};

struct HtPrivateLassoResult {
  Vector w;
  PrivacyLedger ledger;
  int iterations = 0;
  double shrinkage_used = 0.0;
  std::vector<double> risk_trace;  // risk on the *original* data
};

/// Runs Algorithm 2 (squared loss only, by construction). `w0` must lie in
/// `polytope`.
HtPrivateLassoResult RunHtPrivateLasso(const Dataset& data,
                                       const Polytope& polytope,
                                       const Vector& w0,
                                       const HtPrivateLassoOptions& options,
                                       Rng& rng);

}  // namespace htdp

#endif  // HTDP_CORE_HT_PRIVATE_LASSO_H_
