#ifndef HTDP_CORE_DP_ROBUST_GD_H_
#define HTDP_CORE_DP_ROBUST_GD_H_

#include "data/dataset.h"
#include "dp/privacy_ledger.h"
#include "linalg/vector_ops.h"
#include "losses/loss.h"
#include "optim/pgd.h"
#include "rng/rng.h"

namespace htdp {

/// The low-dimensional heavy-tailed baseline in the style of Wang, Xiao,
/// Devadas & Xu (2020) [57] that Remark 1 compares against: per iteration,
/// compute the coordinate-wise Catoni robust gradient on a disjoint fold,
/// then privatize the WHOLE d-vector with the Gaussian mechanism (l2
/// sensitivity sqrt(d) * 4 sqrt(2) s / (3 m)) and take a projected step.
///
/// Because the noise is added to the full vector, its expected l2 norm
/// scales as sqrt(d) * sigma = Theta(d / (m eps)) -- the poly(d) error that
/// confines this method to low dimensions, versus Algorithm 1's exponential
/// mechanism whose error only grows with log |V| = log(2d). The
/// bench_ablation_dimension harness measures exactly this gap.
struct DpRobustGdOptions {
  double epsilon = 1.0;
  double delta = 1e-5;
  /// Iterations T (one disjoint fold per iteration). 0 = floor((n eps)^(1/3))
  /// to mirror Algorithm 1's schedule.
  int iterations = 0;
  /// Catoni truncation scale; 0 = Algorithm 1's Theorem 2 schedule.
  double scale = 0.0;
  double beta = 1.0;
  double tau = 1.0;
  double zeta = 0.1;
  double step = 0.0;  // 0 = 2/(t+2)-style diminishing step via projection
  PgdOptions::Projection projection = PgdOptions::Projection::kL1Ball;
  double radius = 1.0;
};

struct DpRobustGdResult {
  Vector w;
  PrivacyLedger ledger;
  int iterations = 0;
  double scale_used = 0.0;
};

DpRobustGdResult MinimizeDpRobustGd(const Loss& loss, const Dataset& data,
                                    const Vector& w0,
                                    const DpRobustGdOptions& options,
                                    Rng& rng);

}  // namespace htdp

#endif  // HTDP_CORE_DP_ROBUST_GD_H_
