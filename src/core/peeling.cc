#include "core/peeling.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include "rng/distributions.h"
#include "util/check.h"

namespace htdp {

PeelingResult Peel(const Vector& v, const PeelingOptions& options, Rng& rng,
                   PrivacyLedger* ledger, int fold) {
  HTDP_CHECK_GT(options.sparsity, 0u);
  HTDP_CHECK_LE(options.sparsity, v.size());
  HTDP_CHECK_GT(options.epsilon, 0.0);
  HTDP_CHECK(options.delta > 0.0 && options.delta < 1.0)
      << "delta=" << options.delta;
  HTDP_CHECK_GT(options.linf_sensitivity, 0.0);

  const std::size_t d = v.size();
  const std::size_t s = options.sparsity;
  const double noise_scale =
      2.0 * options.linf_sensitivity *
      std::sqrt(3.0 * static_cast<double>(s) * std::log(1.0 / options.delta)) /
      options.epsilon;

  PeelingResult result;
  result.noise_scale = noise_scale;
  result.selected.reserve(s);

  std::vector<bool> taken(d, false);
  for (std::size_t round = 0; round < s; ++round) {
    // Fresh noise on every coordinate each round, exactly as in the
    // pseudocode (w_i ~ Lap(noise_scale)^d).
    std::size_t best = d;
    double best_value = -1e300;
    for (std::size_t j = 0; j < d; ++j) {
      const double noisy = std::abs(v[j]) + SampleLaplace(rng, noise_scale);
      if (!taken[j] && noisy > best_value) {
        best_value = noisy;
        best = j;
      }
    }
    HTDP_CHECK_LT(best, d);
    taken[best] = true;
    result.selected.push_back(best);
  }

  result.value.assign(d, 0.0);
  for (std::size_t j : result.selected) {
    result.value[j] = v[j] + SampleLaplace(rng, noise_scale);
  }

  if (ledger != nullptr) {
    ledger->Record({"laplace-peeling", options.epsilon, options.delta,
                    options.linf_sensitivity, fold});
  }
  return result;
}

}  // namespace htdp
