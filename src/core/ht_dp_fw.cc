// Back-compat wrapper: RunHtDpFw is now a thin adapter over the
// alg1_dp_fw Solver in src/api/, which holds the algorithm body.

#include "core/ht_dp_fw.h"

#include <memory>
#include <utility>

#include "api/api.h"
#include "util/check.h"

namespace htdp {

HtDpFwResult RunHtDpFw(const Loss& loss, const Dataset& data,
                       const Polytope& polytope, const Vector& w0,
                       const HtDpFwOptions& options, Rng& rng) {
  static const std::unique_ptr<const Solver> solver = CreateAlg1DpFwSolver();

  // Legacy contract: an unsized w0 is a programmer error, not a request
  // for the facade's empty-means-origin convenience.
  HTDP_CHECK_EQ(w0.size(), data.dim());
  Problem problem = Problem::ConstrainedErm(loss, data, polytope);
  problem.w0 = w0;

  SolverSpec spec;
  spec.budget = PrivacyBudget::Pure(options.epsilon);
  spec.iterations = options.iterations;
  spec.scale = options.scale;
  spec.beta = options.beta;
  spec.tau = options.tau;
  spec.zeta = options.zeta;
  spec.diminishing_step = options.diminishing_step;
  spec.fixed_step = options.fixed_step;
  spec.record_risk_trace = options.record_risk_trace;

  FitResult fit = solver->Fit(problem, spec, rng);

  HtDpFwResult result;
  result.w = std::move(fit.w);
  result.ledger = std::move(fit.ledger);
  result.iterations = fit.iterations;
  result.scale_used = fit.scale_used;
  result.risk_trace = std::move(fit.risk_trace);
  return result;
}

}  // namespace htdp
