#include "core/ht_dp_fw.h"

#include <cmath>
#include <cstddef>

#include "core/hyperparams.h"
#include "core/robust_gradient.h"
#include "dp/exponential_mechanism.h"
#include "util/check.h"

namespace htdp {

HtDpFwResult RunHtDpFw(const Loss& loss, const Dataset& data,
                       const Polytope& polytope, const Vector& w0,
                       const HtDpFwOptions& options, Rng& rng) {
  data.Validate();
  HTDP_CHECK_EQ(w0.size(), polytope.dim());
  HTDP_CHECK_EQ(data.dim(), polytope.dim());
  HTDP_CHECK_GT(options.epsilon, 0.0);
  HTDP_CHECK_GT(options.beta, 0.0);

  int iterations = options.iterations;
  double scale = options.scale;
  if (iterations <= 0 || scale <= 0.0) {
    const Alg1Schedule schedule =
        SolveAlg1Schedule(data.size(), data.dim(), options.epsilon,
                          options.tau, polytope.num_vertices(), options.zeta);
    if (iterations <= 0) iterations = schedule.iterations;
    if (scale <= 0.0) scale = schedule.scale;
  }
  HTDP_CHECK_LE(static_cast<std::size_t>(iterations), data.size());

  const RobustGradientEstimator estimator(scale, options.beta);
  const std::vector<DatasetView> folds =
      SplitIntoFolds(data, static_cast<std::size_t>(iterations));

  HtDpFwResult result;
  result.w = w0;
  result.iterations = iterations;
  result.scale_used = scale;

  Vector robust_grad;
  Vector scores;
  for (int t = 1; t <= iterations; ++t) {
    const DatasetView& fold = folds[static_cast<std::size_t>(t - 1)];
    estimator.Estimate(loss, fold, result.w, robust_grad);

    // Score u(D_t, v) = -<v, g~>; sensitivity ||v||_1 * (4 sqrt(2) s)/(3 m).
    const double sensitivity =
        polytope.MaxVertexL1Norm() * estimator.Sensitivity(fold.size());
    const ExponentialMechanism mechanism(sensitivity, options.epsilon);
    polytope.VertexInnerProducts(robust_grad, scores);
    for (double& value : scores) value = -value;
    const std::size_t pick = mechanism.SelectGumbel(scores, rng);
    result.ledger.Record({"exponential", options.epsilon, 0.0, sensitivity,
                          /*fold=*/t - 1});

    double eta;
    if (options.diminishing_step) {
      eta = 2.0 / (static_cast<double>(t) + 2.0);
    } else if (options.fixed_step > 0.0) {
      eta = options.fixed_step;
    } else {
      eta = 1.0 / std::sqrt(static_cast<double>(iterations));
    }
    polytope.ApplyConvexStep(pick, eta, result.w);

    if (options.record_risk_trace) {
      result.risk_trace.push_back(EmpiricalRisk(loss, data, result.w));
    }
  }
  return result;
}

}  // namespace htdp
