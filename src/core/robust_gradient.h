#ifndef HTDP_CORE_ROBUST_GRADIENT_H_
#define HTDP_CORE_ROBUST_GRADIENT_H_

#include <cstddef>

#include "data/dataset.h"
#include "linalg/vector_ops.h"
#include "losses/loss.h"
#include "robust/robust_mean.h"

namespace htdp {

/// The coordinate-wise robust gradient estimator g~(w, D) of Algorithm 1
/// step 4 / Algorithm 5 step 4: the one-dimensional Catoni-style estimator
/// x_hat(s, beta) (Eqs. (2)-(5)) applied to each coordinate of the
/// per-sample gradients { grad l(w, z_i) }.
///
/// Because the multiplicative-noise smoothing is evaluated analytically, the
/// estimator is deterministic; privacy enters only through the downstream
/// mechanism, which relies on the l-infinity sensitivity bound
/// 4 sqrt(2) s / (3 m) exposed by Sensitivity().
class RobustGradientEstimator {
 public:
  /// `scale` is the truncation scale (s in Algorithm 1, k in Algorithm 5);
  /// `beta` the smoothing precision.
  RobustGradientEstimator(double scale, double beta);

  double scale() const { return estimator_.scale(); }
  double beta() const { return estimator_.beta(); }

  /// Computes g~(w, view) into `out` (resized to w.size()). Uses the GLM
  /// fast path of `loss` when available; thread-parallel over samples.
  void Estimate(const Loss& loss, const DatasetView& view, const Vector& w,
                Vector& out) const;

  /// l-infinity sensitivity of Estimate() over m samples when one sample is
  /// replaced: 4 sqrt(2) scale / (3 m).
  double Sensitivity(std::size_t m) const;

 private:
  RobustMeanEstimator estimator_;
};

}  // namespace htdp

#endif  // HTDP_CORE_ROBUST_GRADIENT_H_
