#ifndef HTDP_CORE_ROBUST_GRADIENT_H_
#define HTDP_CORE_ROBUST_GRADIENT_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "linalg/vector_ops.h"
#include "losses/loss.h"
#include "robust/robust_mean.h"

namespace htdp {

/// Reusable scratch for RobustGradientEstimator::Estimate: the per-chunk
/// partial accumulators of the deterministic parallel reduction and one
/// per-chunk row buffer (the fused scaled-feature row on the GLM path, the
/// materialized per-sample gradient otherwise). Buffers grow on first use
/// and are retained, so a fit loop that passes the same workspace every
/// iteration performs no heap allocation after warm-up.
struct RobustGradientWorkspace {
  std::vector<Vector> partials;
  std::vector<Vector> row_buffers;
};

/// The coordinate-wise robust gradient estimator g~(w, D) of Algorithm 1
/// step 4 / Algorithm 5 step 4: the one-dimensional Catoni-style estimator
/// x_hat(s, beta) (Eqs. (2)-(5)) applied to each coordinate of the
/// per-sample gradients { grad l(w, z_i) }.
///
/// Because the multiplicative-noise smoothing is evaluated analytically, the
/// estimator is deterministic; privacy enters only through the downstream
/// mechanism, which relies on the l-infinity sensitivity bound
/// 4 sqrt(2) s / (3 m) exposed by Sensitivity().
class RobustGradientEstimator {
 public:
  /// `scale` is the truncation scale (s in Algorithm 1, k in Algorithm 5);
  /// `beta` the smoothing precision. `simd` selects the evaluation path of
  /// the per-coordinate Catoni kernel (see RobustMeanEstimator and the
  /// HTDP_SIMD contract in util/simd.h); solvers thread SolverSpec::simd
  /// through here so a scalar-reference fit can be forced per job.
  RobustGradientEstimator(double scale, double beta,
                          SimdMode simd = SimdMode::kAuto);

  double scale() const { return estimator_.scale(); }
  double beta() const { return estimator_.beta(); }
  bool simd() const { return estimator_.simd(); }

  /// Computes g~(w, view) into `out` (resized to w.size()). Uses the fused
  /// batched GLM row kernel of `loss` when available; thread-parallel over
  /// sample chunks with a deterministic reduction order that depends only on
  /// (view.size(), NumWorkerThreads()), never on scheduling. Pass a
  /// `workspace` owned by the fit loop to reuse the reduction buffers across
  /// iterations (zero allocations after warm-up); with the default nullptr a
  /// call-local workspace is used.
  void Estimate(const Loss& loss, const DatasetView& view, const Vector& w,
                Vector& out, RobustGradientWorkspace* workspace = nullptr)
      const;

  /// l-infinity sensitivity of Estimate() over m samples when one sample is
  /// replaced: 4 sqrt(2) scale / (3 m).
  double Sensitivity(std::size_t m) const;

 private:
  RobustMeanEstimator estimator_;
};

}  // namespace htdp

#endif  // HTDP_CORE_ROBUST_GRADIENT_H_
