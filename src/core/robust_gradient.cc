#include "core/robust_gradient.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "obs/trace.h"
#include "util/check.h"
#include "util/parallel.h"

namespace htdp {

RobustGradientEstimator::RobustGradientEstimator(double scale, double beta,
                                                 SimdMode simd)
    : estimator_(scale, beta, simd) {}

void RobustGradientEstimator::Estimate(const Loss& loss,
                                       const DatasetView& view,
                                       const Vector& w, Vector& out,
                                       RobustGradientWorkspace* workspace)
    const {
  HTDP_TRACE_SPAN("robust.estimate");
  HTDP_CHECK_GT(view.size(), 0u);
  HTDP_CHECK_EQ(view.dim(), w.size());
  const std::size_t d = w.size();
  const std::size_t m = view.size();

  double probe = 0.0;
  const bool glm =
      loss.GradientAsScaledFeature(view.Row(0), view.Label(0), w, &probe);
  const double ridge = loss.RidgeCoefficient();

  // Per-chunk accumulators keep the parallel reduction race-free and the
  // summation order deterministic for a fixed thread configuration.
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(static_cast<std::size_t>(NumWorkerThreads()),
                               (m + 511) / 512));
  const std::size_t chunk_size = (m + chunks - 1) / chunks;

  RobustGradientWorkspace local;
  RobustGradientWorkspace& ws = workspace != nullptr ? *workspace : local;
  if (ws.partials.size() < chunks) ws.partials.resize(chunks);
  if (ws.row_buffers.size() < chunks) ws.row_buffers.resize(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    ws.partials[c].assign(d, 0.0);
    if (ws.row_buffers[c].size() < d) ws.row_buffers[c].resize(d);
  }

  // Each chunk is an expensive unit (hundreds of samples x d coordinates of
  // erfc/exp-heavy math), so dispatch to the pool from two chunks up.
  ParallelFor(
      chunks,
      [&](std::size_t c_begin, std::size_t c_end) {
        for (std::size_t c = c_begin; c < c_end; ++c) {
          Vector& acc = ws.partials[c];
          Vector& row_buf = ws.row_buffers[c];
          const std::size_t lo = c * chunk_size;
          const std::size_t hi = std::min(lo + chunk_size, m);
          for (std::size_t i = lo; i < hi; ++i) {
            if (glm) {
              double scale = 0.0;
              HTDP_CHECK(loss.GradientAsScaledFeature(view.Row(i),
                                                      view.Label(i), w,
                                                      &scale));
              // Fused row kernel: materialize the per-sample gradient row
              // scale * x_i + ridge * w, then push the whole contiguous row
              // through the batched Catoni kernel.
              ScaledSumKernel(scale, view.Row(i), ridge, w.data(),
                              row_buf.data(), d);
            } else {
              loss.Gradient(view.Row(i), view.Label(i), w, row_buf);
            }
            estimator_.AccumulateContributions(row_buf.data(), d, acc.data());
          }
        }
      },
      /*min_parallel=*/2);

  out.assign(d, 0.0);
  for (std::size_t c = 0; c < chunks; ++c) Axpy(1.0, ws.partials[c], out);
  Scale(1.0 / static_cast<double>(m), out);
}

double RobustGradientEstimator::Sensitivity(std::size_t m) const {
  return estimator_.Sensitivity(m);
}

}  // namespace htdp
