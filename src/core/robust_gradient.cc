#include "core/robust_gradient.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/check.h"
#include "util/parallel.h"

namespace htdp {

RobustGradientEstimator::RobustGradientEstimator(double scale, double beta)
    : estimator_(scale, beta) {}

void RobustGradientEstimator::Estimate(const Loss& loss,
                                       const DatasetView& view,
                                       const Vector& w, Vector& out) const {
  HTDP_CHECK_GT(view.size(), 0u);
  HTDP_CHECK_EQ(view.dim(), w.size());
  const std::size_t d = w.size();
  const std::size_t m = view.size();

  double probe = 0.0;
  const bool glm =
      loss.GradientAsScaledFeature(view.Row(0), view.Label(0), w, &probe);
  const double ridge = loss.RidgeCoefficient();

  // Per-chunk accumulators keep the parallel reduction race-free and the
  // summation order deterministic for a fixed thread configuration.
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(static_cast<std::size_t>(NumWorkerThreads()),
                               (m + 511) / 512));
  const std::size_t chunk_size = (m + chunks - 1) / chunks;
  std::vector<Vector> partial(chunks, Vector(d, 0.0));

  ParallelFor(chunks, [&](std::size_t c_begin, std::size_t c_end) {
    Vector sample_grad;
    if (!glm) sample_grad.resize(d);
    for (std::size_t c = c_begin; c < c_end; ++c) {
      Vector& acc = partial[c];
      const std::size_t lo = c * chunk_size;
      const std::size_t hi = std::min(lo + chunk_size, m);
      for (std::size_t i = lo; i < hi; ++i) {
        if (glm) {
          double scale = 0.0;
          HTDP_CHECK(loss.GradientAsScaledFeature(view.Row(i), view.Label(i),
                                                  w, &scale));
          const double* row = view.Row(i);
          for (std::size_t j = 0; j < d; ++j) {
            acc[j] +=
                estimator_.SampleContribution(scale * row[j] + ridge * w[j]);
          }
        } else {
          loss.Gradient(view.Row(i), view.Label(i), w, sample_grad);
          for (std::size_t j = 0; j < d; ++j) {
            acc[j] += estimator_.SampleContribution(sample_grad[j]);
          }
        }
      }
    }
  });

  out.assign(d, 0.0);
  for (const Vector& acc : partial) Axpy(1.0, acc, out);
  Scale(1.0 / static_cast<double>(m), out);
}

double RobustGradientEstimator::Sensitivity(std::size_t m) const {
  return estimator_.Sensitivity(m);
}

}  // namespace htdp
