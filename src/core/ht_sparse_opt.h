#ifndef HTDP_CORE_HT_SPARSE_OPT_H_
#define HTDP_CORE_HT_SPARSE_OPT_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "dp/privacy_ledger.h"
#include "linalg/vector_ops.h"
#include "losses/loss.h"
#include "rng/rng.h"

namespace htdp {

/// Algorithm 5: Heavy-tailed Private Sparse Optimization
/// ((epsilon, delta)-DP) for general smooth losses over the l0 constraint.
///
/// Splits the data into T disjoint folds; per fold computes the
/// coordinate-wise Catoni robust gradient g~ with truncation scale k,
/// takes the step w_{t+0.5} = w_t - eta g~, and privately selects the top-s
/// coordinates with Peeling (noise scale lambda = 4 sqrt(2) k eta / m, the
/// paper's bound on ||w_{t+0.5} - w'_{t+0.5}||_inf). Disjoint folds give
/// (epsilon, delta)-DP (Theorem 8); under Assumption 4 (RSC/RSS + bounded
/// coordinate-wise gradient moments) the excess risk is
/// O~(tau s*^(3/2) log d / (n eps)), near-optimal up to O~(sqrt(s*)) by the
/// Theorem 9 lower bound.
struct HtSparseOptOptions {
  double epsilon = 1.0;
  double delta = 1e-5;
  /// T; 0 = auto, floor(log n) per Section 6.2.
  int iterations = 0;
  /// Peeling sparsity s; 0 = auto, 2 * target_sparsity per Section 6.2.
  std::size_t sparsity = 0;
  /// s* (required when sparsity == 0).
  std::size_t target_sparsity = 0;
  /// Truncation scale k; 0 = auto from the Theorem 8 proof using `tau`.
  double scale = 0.0;
  /// Coordinate-wise gradient second-moment bound (Assumption 4).
  double tau = 1.0;
  double beta = 1.0;
  /// Step size eta (Section 6.2 uses 0.5; theory: 2/(3 gamma_r)).
  double step = 0.5;
  /// Failure probability driving the auto schedule's log terms.
  double zeta = 0.1;
};

struct HtSparseOptResult {
  Vector w;
  PrivacyLedger ledger;
  int iterations = 0;
  std::size_t sparsity_used = 0;
  double scale_used = 0.0;
};

/// Runs Algorithm 5 on any Loss. `w0` must be s-sparse.
HtSparseOptResult RunHtSparseOpt(const Loss& loss, const Dataset& data,
                                 const Vector& w0,
                                 const HtSparseOptOptions& options, Rng& rng);

}  // namespace htdp

#endif  // HTDP_CORE_HT_SPARSE_OPT_H_
