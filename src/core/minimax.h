#ifndef HTDP_CORE_MINIMAX_H_
#define HTDP_CORE_MINIMAX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "linalg/vector_ops.h"
#include "rng/rng.h"

namespace htdp {

/// The Theorem 9 lower-bound construction for private sparse heavy-tailed
/// mean estimation.
///
/// Packing (Lemma 11): a subset of H(s) = {z in {-1,0,+1}^d : ||z||_0 = s}
/// with pairwise Hamming distance >= s/2, scaled by 1/sqrt(2s) so members
/// are s-sparse unit-ball vectors at pairwise l2 distance >= sqrt(2)/...;
/// Hard family: P_{theta_v} = (1-p) P_0 + p P_v with P_0 a point mass at 0
/// and P_v a point mass at sqrt(tau/p) v, so theta_v = sqrt(p tau) v and
/// E X_j^2 <= tau coordinate-wise.
class SparseMeanHardFamily {
 public:
  /// Builds (greedily) a packing of up to `family_size` members and the
  /// mixture family for an (epsilon, delta)-DP adversary observing n
  /// samples. Requires 2 <= sparsity <= d/2.
  SparseMeanHardFamily(std::size_t d, std::size_t sparsity,
                       std::size_t family_size, double tau, double epsilon,
                       double delta, std::size_t n, Rng& rng);

  std::size_t family_size() const { return members_.size(); }
  std::size_t dim() const { return d_; }
  double contamination_p() const { return p_; }

  /// theta_v = sqrt(p tau) v, the mean of family member v.
  Vector Mean(std::size_t v) const;

  /// Draws n i.i.d. samples from P_{theta_v} (labels are zero; the mean
  /// loss ignores them).
  Dataset Sample(std::size_t v, std::size_t n, Rng& rng) const;

  /// min_{v != v'} ||theta_v - theta_{v'}||_2^2 over the packing
  /// (>= p tau by construction).
  double MinSeparationSquared() const;

  /// The Theorem 9 bound Omega(tau min{s log d, log(1/delta)} / (n eps)),
  /// with the 1/4 constant from the proof.
  static double LowerBound(std::size_t n, std::size_t d, std::size_t sparsity,
                           double epsilon, double delta, double tau);

 private:
  std::size_t d_;
  std::size_t sparsity_;
  double tau_;
  double p_;
  double atom_magnitude_;  // sqrt(tau / p) / sqrt(2 s) per nonzero coordinate
  // Each member: the signed support (+1/-1 entries at `indices`).
  struct Member {
    std::vector<std::size_t> indices;
    std::vector<int> signs;
  };
  std::vector<Member> members_;
};

}  // namespace htdp

#endif  // HTDP_CORE_MINIMAX_H_
