// Back-compat wrapper: RunHtSparseLinReg is now a thin adapter over the
// alg3_sparse_linreg Solver in src/api/, which holds the algorithm body.

#include "core/ht_sparse_linreg.h"

#include <memory>
#include <utility>

#include "api/api.h"
#include "util/check.h"

namespace htdp {

HtSparseLinRegResult RunHtSparseLinReg(const Dataset& data, const Vector& w0,
                                       const HtSparseLinRegOptions& options,
                                       Rng& rng) {
  static const std::unique_ptr<const Solver> solver =
      CreateAlg3SparseLinRegSolver();
  HTDP_CHECK_GT(options.step, 0.0);

  HTDP_CHECK_EQ(w0.size(), data.dim());
  Problem problem;
  problem.data = &data;
  problem.w0 = w0;
  problem.target_sparsity = options.target_sparsity;

  SolverSpec spec;
  spec.budget = PrivacyBudget::Approx(options.epsilon, options.delta);
  spec.iterations = options.iterations;
  spec.sparsity = options.sparsity;
  spec.sparsity_multiplier = options.sparsity_multiplier;
  spec.shrinkage = options.shrinkage;
  spec.step = options.step;

  FitResult fit = solver->Fit(problem, spec, rng);

  HtSparseLinRegResult result;
  result.w = std::move(fit.w);
  result.ledger = std::move(fit.ledger);
  result.iterations = fit.iterations;
  result.sparsity_used = fit.sparsity_used;
  result.shrinkage_used = fit.shrinkage_used;
  return result;
}

}  // namespace htdp
