#include "core/ht_sparse_linreg.h"

#include <cmath>
#include <cstddef>

#include "core/hyperparams.h"
#include "core/peeling.h"
#include "dp/privacy.h"
#include "linalg/projections.h"
#include "robust/shrinkage.h"
#include "util/check.h"

namespace htdp {

HtSparseLinRegResult RunHtSparseLinReg(const Dataset& data, const Vector& w0,
                                       const HtSparseLinRegOptions& options,
                                       Rng& rng) {
  data.Validate();
  HTDP_CHECK_EQ(w0.size(), data.dim());
  PrivacyParams{options.epsilon, options.delta}.Validate();
  HTDP_CHECK_GT(options.delta, 0.0);
  HTDP_CHECK_GT(options.step, 0.0);

  int iterations = options.iterations;
  std::size_t sparsity = options.sparsity;
  double shrinkage = options.shrinkage;
  if (iterations <= 0 || sparsity == 0 || shrinkage <= 0.0) {
    HTDP_CHECK(options.target_sparsity > 0 || sparsity > 0)
        << "set target_sparsity (s*) or sparsity (s)";
    const std::size_t s_star =
        options.target_sparsity > 0 ? options.target_sparsity : sparsity;
    const Alg3Schedule schedule = SolveAlg3Schedule(
        data.size(), options.epsilon, s_star, options.sparsity_multiplier);
    if (iterations <= 0) iterations = schedule.iterations;
    if (sparsity == 0) sparsity = schedule.sparsity;
    if (shrinkage <= 0.0) {
      // Recompute K with the final (s, T) in case the caller pinned them.
      const double s_t = static_cast<double>(sparsity) *
                         static_cast<double>(iterations);
      shrinkage = std::pow(
          static_cast<double>(data.size()) * options.epsilon / s_t, 0.25);
    }
  }
  HTDP_CHECK_LE(sparsity, data.dim());
  HTDP_CHECK_LE(static_cast<std::size_t>(iterations), data.size());

  // Step 2: entrywise shrinkage.
  Dataset shrunken = data;
  ShrinkInPlace(shrinkage, shrunken.x);
  ShrinkInPlace(shrinkage, shrunken.y);

  const std::vector<DatasetView> folds =
      SplitIntoFolds(shrunken, static_cast<std::size_t>(iterations));

  HtSparseLinRegResult result;
  result.w = w0;
  result.iterations = iterations;
  result.sparsity_used = sparsity;
  result.shrinkage_used = shrinkage;

  const std::size_t d = data.dim();
  const double k2 = shrinkage * shrinkage;
  Vector grad(d);
  for (int t = 0; t < iterations; ++t) {
    const DatasetView& fold = folds[static_cast<std::size_t>(t)];
    const std::size_t m = fold.size();

    // w_{t+0.5} = w_t - (eta0/m) sum_i x~_i (<x~_i, w_t> - y~_i).
    SetZero(grad);
    for (std::size_t i = 0; i < m; ++i) {
      const double* row = fold.Row(i);
      const double residual =
          Dot(row, result.w.data(), d) - fold.Label(i);
      for (std::size_t j = 0; j < d; ++j) grad[j] += residual * row[j];
    }
    Vector w_half = result.w;
    Axpy(-options.step / static_cast<double>(m), grad, w_half);

    // Step 6: Peeling with lambda = 2 K^2 eta0 (sqrt(s) + 1) / m.
    PeelingOptions peeling;
    peeling.sparsity = sparsity;
    peeling.epsilon = options.epsilon;
    peeling.delta = options.delta;
    peeling.linf_sensitivity =
        2.0 * k2 * options.step *
        (std::sqrt(static_cast<double>(sparsity)) + 1.0) /
        static_cast<double>(m);
    const PeelingResult peeled =
        Peel(w_half, peeling, rng, &result.ledger, /*fold=*/t);

    // Step 7: project onto the unit l2 ball.
    result.w = peeled.value;
    ProjectOntoL2Ball(1.0, result.w);
  }
  return result;
}

}  // namespace htdp
