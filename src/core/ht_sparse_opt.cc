// Back-compat wrapper: RunHtSparseOpt is now a thin adapter over the
// alg5_sparse_opt Solver in src/api/, which holds the algorithm body.

#include "core/ht_sparse_opt.h"

#include <memory>
#include <utility>

#include "api/api.h"
#include "util/check.h"

namespace htdp {

HtSparseOptResult RunHtSparseOpt(const Loss& loss, const Dataset& data,
                                 const Vector& w0,
                                 const HtSparseOptOptions& options,
                                 Rng& rng) {
  static const std::unique_ptr<const Solver> solver =
      CreateAlg5SparseOptSolver();
  HTDP_CHECK_GT(options.step, 0.0);

  HTDP_CHECK_EQ(w0.size(), data.dim());
  Problem problem = Problem::SparseErm(loss, data, options.target_sparsity);
  problem.w0 = w0;

  SolverSpec spec;
  spec.budget = PrivacyBudget::Approx(options.epsilon, options.delta);
  spec.iterations = options.iterations;
  spec.sparsity = options.sparsity;
  spec.scale = options.scale;
  spec.tau = options.tau;
  spec.beta = options.beta;
  spec.step = options.step;
  spec.zeta = options.zeta;

  FitResult fit = solver->Fit(problem, spec, rng);

  HtSparseOptResult result;
  result.w = std::move(fit.w);
  result.ledger = std::move(fit.ledger);
  result.iterations = fit.iterations;
  result.sparsity_used = fit.sparsity_used;
  result.scale_used = fit.scale_used;
  return result;
}

}  // namespace htdp
