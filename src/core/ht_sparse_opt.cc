#include "core/ht_sparse_opt.h"

#include <cmath>
#include <cstddef>

#include "core/hyperparams.h"
#include "core/peeling.h"
#include "core/robust_gradient.h"
#include "dp/privacy.h"
#include "util/check.h"

namespace htdp {

HtSparseOptResult RunHtSparseOpt(const Loss& loss, const Dataset& data,
                                 const Vector& w0,
                                 const HtSparseOptOptions& options,
                                 Rng& rng) {
  data.Validate();
  HTDP_CHECK_EQ(w0.size(), data.dim());
  PrivacyParams{options.epsilon, options.delta}.Validate();
  HTDP_CHECK_GT(options.delta, 0.0);
  HTDP_CHECK_GT(options.step, 0.0);
  HTDP_CHECK_GT(options.beta, 0.0);

  int iterations = options.iterations;
  std::size_t sparsity = options.sparsity;
  double scale = options.scale;
  if (iterations <= 0 || sparsity == 0 || scale <= 0.0) {
    HTDP_CHECK(options.target_sparsity > 0 || sparsity > 0)
        << "set target_sparsity (s*) or sparsity (s)";
    const std::size_t s_star =
        options.target_sparsity > 0 ? options.target_sparsity : sparsity / 2;
    const Alg5Schedule schedule =
        SolveAlg5Schedule(data.size(), data.dim(), options.epsilon,
                          options.tau, std::max<std::size_t>(s_star, 1),
                          options.zeta);
    if (iterations <= 0) iterations = schedule.iterations;
    if (sparsity == 0) sparsity = schedule.sparsity;
    if (scale <= 0.0) scale = schedule.scale;
  }
  HTDP_CHECK_LE(sparsity, data.dim());
  HTDP_CHECK_LE(static_cast<std::size_t>(iterations), data.size());

  const RobustGradientEstimator estimator(scale, options.beta);
  const std::vector<DatasetView> folds =
      SplitIntoFolds(data, static_cast<std::size_t>(iterations));

  HtSparseOptResult result;
  result.w = w0;
  result.iterations = iterations;
  result.sparsity_used = sparsity;
  result.scale_used = scale;

  Vector robust_grad;
  for (int t = 0; t < iterations; ++t) {
    const DatasetView& fold = folds[static_cast<std::size_t>(t)];
    const std::size_t m = fold.size();

    estimator.Estimate(loss, fold, result.w, robust_grad);
    Vector w_half = result.w;
    Axpy(-options.step, robust_grad, w_half);

    // Peeling with the paper's lambda = 4 sqrt(2) k eta / m, which dominates
    // the true step sensitivity eta * 4 sqrt(2) k / (3 m).
    PeelingOptions peeling;
    peeling.sparsity = sparsity;
    peeling.epsilon = options.epsilon;
    peeling.delta = options.delta;
    peeling.linf_sensitivity = 4.0 * std::sqrt(2.0) * scale * options.step /
                               static_cast<double>(m);
    const PeelingResult peeled =
        Peel(w_half, peeling, rng, &result.ledger, /*fold=*/t);
    result.w = peeled.value;
  }
  return result;
}

}  // namespace htdp
