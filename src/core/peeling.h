#ifndef HTDP_CORE_PEELING_H_
#define HTDP_CORE_PEELING_H_

#include <cstddef>
#include <vector>

#include "dp/privacy_ledger.h"
#include "linalg/vector_ops.h"
#include "rng/rng.h"

namespace htdp {

/// Algorithm 4 ("Peeling", Cai, Wang & Zhang 2019): differentially private
/// selection of the s largest-magnitude coordinates of a data-dependent
/// vector v, followed by a noisy release of the selected sub-vector.
///
/// Each of the s rounds adds fresh Lap(2 lambda sqrt(3 s log(1/delta)) /
/// epsilon) noise to every |v_j| and appends the noisy argmax among unpicked
/// indices; the released value is v_S plus Laplace noise of the same scale
/// on S. When `linf_sensitivity` (lambda) bounds ||v(D) - v(D')||_inf over
/// neighboring datasets the procedure is (epsilon, delta)-DP (Lemma 10).
struct PeelingOptions {
  std::size_t sparsity = 1;   // s
  double epsilon = 1.0;
  double delta = 1e-5;
  double linf_sensitivity = 0.0;  // lambda; must be > 0
};

struct PeelingResult {
  /// v_S + noise on S, zero elsewhere.
  Vector value;
  /// The s selected indices, in selection order.
  std::vector<std::size_t> selected;
  /// The per-coordinate Laplace scale that was used.
  double noise_scale = 0.0;
};

/// Runs Peeling on `v`. Records one (epsilon, delta) entry in `ledger` when
/// provided; `fold` tags the ledger entry (see PrivacyLedger).
PeelingResult Peel(const Vector& v, const PeelingOptions& options, Rng& rng,
                   PrivacyLedger* ledger = nullptr, int fold = -1);

}  // namespace htdp

#endif  // HTDP_CORE_PEELING_H_
