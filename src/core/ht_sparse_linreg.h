#ifndef HTDP_CORE_HT_SPARSE_LINREG_H_
#define HTDP_CORE_HT_SPARSE_LINREG_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "dp/privacy_ledger.h"
#include "linalg/vector_ops.h"
#include "rng/rng.h"

namespace htdp {

/// Algorithm 3: Heavy-tailed Private Sparse Linear Regression
/// ((epsilon, delta)-DP truncated DP-IHT).
///
/// Shrinks the data entrywise at threshold K, splits it into T disjoint
/// folds, and per fold takes the gradient step
///   w_{t+0.5} = w_t - (eta0/m) sum x~ (<x~, w_t> - y~),
/// privately selects the top-s coordinates with Peeling (noise scale
/// lambda = 2 K^2 eta0 (sqrt(s) + 1) / m), and projects onto the unit l2
/// ball. Disjoint folds give (epsilon, delta)-DP overall (Theorem 6); under
/// Assumption 3 the excess risk is O~(s*^2 log^2 d / (n eps)) (Theorem 7).
struct HtSparseLinRegOptions {
  double epsilon = 1.0;
  double delta = 1e-5;
  /// T; 0 = auto, floor(log n) per Section 6.2.
  int iterations = 0;
  /// Peeling sparsity s; 0 = auto, sparsity_multiplier * target_sparsity.
  std::size_t sparsity = 0;
  /// s* (required when sparsity == 0).
  std::size_t target_sparsity = 0;
  /// The integer c of Section 6.2's s = c s*.
  int sparsity_multiplier = 2;
  /// Shrinkage threshold K; 0 = auto, (n eps / (s T))^(1/4).
  double shrinkage = 0.0;
  /// Step size eta0 (Section 6.2 uses 0.5).
  double step = 0.5;
};

struct HtSparseLinRegResult {
  Vector w;
  PrivacyLedger ledger;
  int iterations = 0;
  std::size_t sparsity_used = 0;
  double shrinkage_used = 0.0;
};

/// Runs Algorithm 3. `w0` must be s-sparse with ||w0||_2 <= 1.
HtSparseLinRegResult RunHtSparseLinReg(const Dataset& data, const Vector& w0,
                                       const HtSparseLinRegOptions& options,
                                       Rng& rng);

}  // namespace htdp

#endif  // HTDP_CORE_HT_SPARSE_LINREG_H_
