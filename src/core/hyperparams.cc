#include "core/hyperparams.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "util/check.h"

namespace htdp {
namespace {

double SafeLog(double x) { return std::log(std::max(x, std::exp(1.0))); }

int ClampIterations(double t, std::size_t n) {
  // At least one iteration; never more folds than samples.
  const double capped =
      std::min(std::max(t, 1.0), static_cast<double>(n));
  return static_cast<int>(capped);
}

}  // namespace

Alg1Schedule SolveAlg1Schedule(std::size_t n, std::size_t d, double epsilon,
                               double tau, std::size_t num_vertices,
                               double zeta) {
  HTDP_CHECK_GT(n, 0u);
  HTDP_CHECK_GT(d, 0u);
  HTDP_CHECK_GT(epsilon, 0.0);
  HTDP_CHECK_GT(tau, 0.0);
  HTDP_CHECK(zeta > 0.0 && zeta < 1.0) << "zeta=" << zeta;
  Alg1Schedule schedule;
  const double n_eps = static_cast<double>(n) * epsilon;
  schedule.iterations = ClampIterations(std::floor(std::cbrt(n_eps)), n);
  const double t = static_cast<double>(schedule.iterations);
  const double log_term = SafeLog(static_cast<double>(num_vertices) *
                                  static_cast<double>(d) * t / zeta);
  schedule.scale = std::sqrt(n_eps * tau / (t * log_term));
  schedule.beta = 1.0;
  return schedule;
}

Alg1RobustSchedule SolveAlg1RobustSchedule(std::size_t n, std::size_t d,
                                           double epsilon, double zeta) {
  HTDP_CHECK_GT(n, 0u);
  HTDP_CHECK_GT(d, 0u);
  HTDP_CHECK_GT(epsilon, 0.0);
  HTDP_CHECK(zeta > 0.0 && zeta < 1.0) << "zeta=" << zeta;
  Alg1RobustSchedule schedule;
  const double n_eps = static_cast<double>(n) * epsilon;
  const double log_d = SafeLog(static_cast<double>(d) / zeta);
  schedule.iterations =
      ClampIterations(std::floor(std::sqrt(n_eps / log_d)), n);
  const double t = static_cast<double>(schedule.iterations);
  schedule.scale = std::sqrt(
      n_eps / (std::sqrt(t) * SafeLog(static_cast<double>(d) * t / zeta)));
  schedule.beta = 1.0;
  schedule.step = 1.0 / std::sqrt(t);
  return schedule;
}

Alg2Schedule SolveAlg2Schedule(std::size_t n, double epsilon) {
  HTDP_CHECK_GT(n, 0u);
  HTDP_CHECK_GT(epsilon, 0.0);
  Alg2Schedule schedule;
  const double n_eps = static_cast<double>(n) * epsilon;
  schedule.iterations =
      ClampIterations(std::ceil(std::pow(n_eps, 0.4)), n);
  schedule.shrinkage =
      std::pow(n_eps, 0.25) /
      std::pow(static_cast<double>(schedule.iterations), 0.125);
  return schedule;
}

Alg3Schedule SolveAlg3Schedule(std::size_t n, double epsilon,
                               std::size_t target_sparsity, int multiplier) {
  HTDP_CHECK_GT(n, 0u);
  HTDP_CHECK_GT(epsilon, 0.0);
  HTDP_CHECK_GT(target_sparsity, 0u);
  HTDP_CHECK_GE(multiplier, 1);
  Alg3Schedule schedule;
  schedule.iterations =
      ClampIterations(std::floor(std::log(static_cast<double>(n))), n);
  schedule.sparsity = target_sparsity * static_cast<std::size_t>(multiplier);
  const double s_t = static_cast<double>(schedule.sparsity) *
                     static_cast<double>(schedule.iterations);
  schedule.shrinkage =
      std::pow(static_cast<double>(n) * epsilon / s_t, 0.25);
  schedule.step = 0.5;
  return schedule;
}

Alg5Schedule SolveAlg5Schedule(std::size_t n, std::size_t d, double epsilon,
                               double tau, std::size_t target_sparsity,
                               double zeta) {
  HTDP_CHECK_GT(n, 0u);
  HTDP_CHECK_GT(d, 0u);
  HTDP_CHECK_GT(epsilon, 0.0);
  HTDP_CHECK_GT(tau, 0.0);
  HTDP_CHECK_GT(target_sparsity, 0u);
  HTDP_CHECK(zeta > 0.0 && zeta < 1.0) << "zeta=" << zeta;
  Alg5Schedule schedule;
  schedule.iterations =
      ClampIterations(std::floor(std::log(static_cast<double>(n))), n);
  schedule.sparsity = 2 * target_sparsity;
  const double t = static_cast<double>(schedule.iterations);
  const double s = static_cast<double>(schedule.sparsity);
  const double n_eps = static_cast<double>(n) * epsilon;
  // k^4 = n^2 eps^2 tau^2 / ((s T)^2 log(T s / zeta)) per the Theorem 8 proof.
  schedule.scale = std::sqrt(n_eps * tau / (s * t)) /
                   std::pow(SafeLog(t * s / zeta), 0.25);
  schedule.beta = 1.0;
  schedule.step = 0.5;
  return schedule;
}

}  // namespace htdp
