#include "core/hyperparams.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>

#include "util/check.h"

namespace htdp {
namespace {

double SafeLog(double x) { return std::log(std::max(x, std::exp(1.0))); }

int ClampIterations(double t, std::size_t n) {
  // At least one iteration; never more folds than samples.
  const double capped =
      std::min(std::max(t, 1.0), static_cast<double>(n));
  return static_cast<int>(capped);
}

std::string Describe(const char* field, double value) {
  std::ostringstream out;
  out << field << "=" << value;
  return out.str();
}

// Shared strict validation of the inputs every schedule depends on: the
// typed PrivacyBudget check plus the fundability floor. The legacy Solve*
// entry points HTDP_CHECK the same conditions except for the
// n * epsilon >= 1 floor, which they clamp instead (tests rely on that).
Status CheckCommon(std::size_t n, const PrivacyBudget& budget) {
  if (n == 0) return Status::Invalid("n must be > 0");
  if (Status s = budget.Check(); !s.ok()) return s;  // incl. finiteness
  if (static_cast<double>(n) * budget.epsilon < 1.0) {
    return Status::BudgetExhausted(
        Describe("privacy budget too small: need n * epsilon >= 1, got "
                 "n * epsilon",
                 static_cast<double>(n) * budget.epsilon));
  }
  return Status::Ok();
}

Status CheckZeta(double zeta) {
  if (!(zeta > 0.0) || zeta >= 1.0) {
    return Status::Invalid(Describe("zeta must lie in (0, 1); zeta", zeta));
  }
  return Status::Ok();
}

Status CheckTau(double tau) {
  if (!(tau > 0.0) || !std::isfinite(tau)) {
    return Status::Invalid(Describe("tau must be positive and finite; tau",
                                    tau));
  }
  return Status::Ok();
}

Status CheckScalePositive(const char* name, double value) {
  if (!(value > 0.0) || !std::isfinite(value)) {
    return Status::Invalid(Describe(name, value));
  }
  return Status::Ok();
}

// K = (n eps / (s T))^(1/4), Theorem 7 / Section 6.2.
double Alg3ShrinkageFor(std::size_t n, double epsilon, std::size_t sparsity,
                        int iterations) {
  const double s_t =
      static_cast<double>(sparsity) * static_cast<double>(iterations);
  return std::pow(static_cast<double>(n) * epsilon / s_t, 0.25);
}

}  // namespace

Alg1Schedule SolveAlg1Schedule(std::size_t n, std::size_t d, double epsilon,
                               double tau, std::size_t num_vertices,
                               double zeta) {
  HTDP_CHECK_GT(n, 0u);
  HTDP_CHECK_GT(d, 0u);
  HTDP_CHECK_GT(epsilon, 0.0);
  HTDP_CHECK_GT(tau, 0.0);
  HTDP_CHECK(zeta > 0.0 && zeta < 1.0) << "zeta=" << zeta;
  Alg1Schedule schedule;
  const double n_eps = static_cast<double>(n) * epsilon;
  schedule.iterations = ClampIterations(std::floor(std::cbrt(n_eps)), n);
  const double t = static_cast<double>(schedule.iterations);
  const double log_term = SafeLog(static_cast<double>(num_vertices) *
                                  static_cast<double>(d) * t / zeta);
  schedule.scale = std::sqrt(n_eps * tau / (t * log_term));
  schedule.beta = 1.0;
  return schedule;
}

Status TrySolveAlg1Schedule(std::size_t n, std::size_t d,
                            const PrivacyBudget& budget, double tau,
                            std::size_t num_vertices, double zeta,
                            Alg1Schedule* out) {
  if (Status s = CheckCommon(n, budget); !s.ok()) return s;
  if (d == 0) return Status::Invalid("d must be > 0");
  if (num_vertices == 0) return Status::Invalid("num_vertices must be > 0");
  if (Status s = CheckTau(tau); !s.ok()) return s;
  if (Status s = CheckZeta(zeta); !s.ok()) return s;
  *out = SolveAlg1Schedule(n, d, budget.epsilon, tau, num_vertices, zeta);
  if (Status s = CheckScalePositive(
          "Alg1 schedule produced a degenerate truncation scale; scale",
          out->scale);
      !s.ok()) {
    return s;
  }
  return Status::Ok();
}

Alg1RobustSchedule SolveAlg1RobustSchedule(std::size_t n, std::size_t d,
                                           double epsilon, double zeta) {
  HTDP_CHECK_GT(n, 0u);
  HTDP_CHECK_GT(d, 0u);
  HTDP_CHECK_GT(epsilon, 0.0);
  HTDP_CHECK(zeta > 0.0 && zeta < 1.0) << "zeta=" << zeta;
  Alg1RobustSchedule schedule;
  const double n_eps = static_cast<double>(n) * epsilon;
  const double log_d = SafeLog(static_cast<double>(d) / zeta);
  schedule.iterations =
      ClampIterations(std::floor(std::sqrt(n_eps / log_d)), n);
  const double t = static_cast<double>(schedule.iterations);
  schedule.scale = std::sqrt(
      n_eps / (std::sqrt(t) * SafeLog(static_cast<double>(d) * t / zeta)));
  schedule.beta = 1.0;
  schedule.step = 1.0 / std::sqrt(t);
  return schedule;
}

Status TrySolveAlg1RobustSchedule(std::size_t n, std::size_t d,
                                  const PrivacyBudget& budget, double zeta,
                                  Alg1RobustSchedule* out) {
  if (Status s = CheckCommon(n, budget); !s.ok()) return s;
  if (d == 0) return Status::Invalid("d must be > 0");
  if (Status s = CheckZeta(zeta); !s.ok()) return s;
  *out = SolveAlg1RobustSchedule(n, d, budget.epsilon, zeta);
  if (Status s = CheckScalePositive(
          "Alg1 robust schedule produced a degenerate truncation scale; "
          "scale",
          out->scale);
      !s.ok()) {
    return s;
  }
  return Status::Ok();
}

Alg2Schedule SolveAlg2Schedule(std::size_t n, double epsilon) {
  HTDP_CHECK_GT(n, 0u);
  HTDP_CHECK_GT(epsilon, 0.0);
  Alg2Schedule schedule;
  const double n_eps = static_cast<double>(n) * epsilon;
  schedule.iterations =
      ClampIterations(std::ceil(std::pow(n_eps, 0.4)), n);
  schedule.shrinkage =
      std::pow(n_eps, 0.25) /
      std::pow(static_cast<double>(schedule.iterations), 0.125);
  return schedule;
}

Status TrySolveAlg2Schedule(std::size_t n, const PrivacyBudget& budget,
                            Alg2Schedule* out) {
  if (Status s = CheckCommon(n, budget); !s.ok()) return s;
  *out = SolveAlg2Schedule(n, budget.epsilon);
  if (Status s = CheckScalePositive(
          "Alg2 schedule produced a degenerate shrinkage threshold; "
          "shrinkage",
          out->shrinkage);
      !s.ok()) {
    return s;
  }
  return Status::Ok();
}

Alg3Schedule SolveAlg3Schedule(std::size_t n, double epsilon,
                               std::size_t target_sparsity, int multiplier) {
  HTDP_CHECK_GT(n, 0u);
  HTDP_CHECK_GT(epsilon, 0.0);
  HTDP_CHECK_GT(target_sparsity, 0u);
  HTDP_CHECK_GE(multiplier, 1);
  Alg3Schedule schedule;
  schedule.iterations =
      ClampIterations(std::floor(std::log(static_cast<double>(n))), n);
  schedule.sparsity = target_sparsity * static_cast<std::size_t>(multiplier);
  schedule.shrinkage =
      Alg3ShrinkageFor(n, epsilon, schedule.sparsity, schedule.iterations);
  schedule.step = 0.5;
  return schedule;
}

Status TrySolveAlg3Schedule(std::size_t n, const PrivacyBudget& budget,
                            std::size_t target_sparsity, int multiplier,
                            Alg3Schedule* out) {
  if (Status s = CheckCommon(n, budget); !s.ok()) return s;
  if (target_sparsity == 0) {
    return Status::Invalid("set target_sparsity (s*) or sparsity (s)");
  }
  if (multiplier < 1) return Status::Invalid("sparsity_multiplier must be >= 1");
  *out = SolveAlg3Schedule(n, budget.epsilon, target_sparsity, multiplier);
  if (Status s = CheckScalePositive(
          "Alg3 schedule produced a degenerate shrinkage threshold; "
          "shrinkage",
          out->shrinkage);
      !s.ok()) {
    return s;
  }
  return Status::Ok();
}

Status TrySolveAlg3Shrinkage(std::size_t n, const PrivacyBudget& budget,
                             std::size_t sparsity, int iterations,
                             double* shrinkage) {
  if (Status s = CheckCommon(n, budget); !s.ok()) return s;
  if (sparsity == 0) return Status::Invalid("sparsity must be > 0");
  if (iterations < 1) return Status::Invalid("iterations must be >= 1");
  *shrinkage = Alg3ShrinkageFor(n, budget.epsilon, sparsity, iterations);
  return CheckScalePositive(
      "Alg3 schedule produced a degenerate shrinkage threshold; "
      "shrinkage",
      *shrinkage);
}

Status TrySolvePeelingShrinkage(std::size_t n, const PrivacyBudget& budget,
                                double* shrinkage) {
  if (Status s = CheckCommon(n, budget); !s.ok()) return s;
  *shrinkage = std::pow(static_cast<double>(n) * budget.epsilon, 0.25);
  return CheckScalePositive(
      "Peeling schedule produced a degenerate shrinkage threshold; "
      "shrinkage",
      *shrinkage);
}

Alg5Schedule SolveAlg5Schedule(std::size_t n, std::size_t d, double epsilon,
                               double tau, std::size_t target_sparsity,
                               double zeta) {
  HTDP_CHECK_GT(n, 0u);
  HTDP_CHECK_GT(d, 0u);
  HTDP_CHECK_GT(epsilon, 0.0);
  HTDP_CHECK_GT(tau, 0.0);
  HTDP_CHECK_GT(target_sparsity, 0u);
  HTDP_CHECK(zeta > 0.0 && zeta < 1.0) << "zeta=" << zeta;
  Alg5Schedule schedule;
  schedule.iterations =
      ClampIterations(std::floor(std::log(static_cast<double>(n))), n);
  schedule.sparsity = 2 * target_sparsity;
  const double t = static_cast<double>(schedule.iterations);
  const double s = static_cast<double>(schedule.sparsity);
  const double n_eps = static_cast<double>(n) * epsilon;
  // k^4 = n^2 eps^2 tau^2 / ((s T)^2 log(T s / zeta)) per the Theorem 8 proof.
  schedule.scale = std::sqrt(n_eps * tau / (s * t)) /
                   std::pow(SafeLog(t * s / zeta), 0.25);
  schedule.beta = 1.0;
  schedule.step = 0.5;
  return schedule;
}

Status TrySolveAlg5Schedule(std::size_t n, std::size_t d,
                            const PrivacyBudget& budget, double tau,
                            std::size_t target_sparsity, double zeta,
                            Alg5Schedule* out) {
  if (Status s = CheckCommon(n, budget); !s.ok()) return s;
  if (d == 0) return Status::Invalid("d must be > 0");
  if (Status s = CheckTau(tau); !s.ok()) return s;
  if (target_sparsity == 0) {
    return Status::Invalid("set target_sparsity (s*) or sparsity (s)");
  }
  if (Status s = CheckZeta(zeta); !s.ok()) return s;
  *out = SolveAlg5Schedule(n, d, budget.epsilon, tau, target_sparsity, zeta);
  if (Status s = CheckScalePositive(
          "Alg5 schedule produced a degenerate truncation scale; scale",
          out->scale);
      !s.ok()) {
    return s;
  }
  return Status::Ok();
}

}  // namespace htdp
