#ifndef HTDP_CORE_HTDP_H_
#define HTDP_CORE_HTDP_H_

/// Umbrella header for the htdp library: high-dimensional differentially
/// private stochastic optimization with heavy-tailed data (Hu, Ni, Xiao,
/// Wang; PODS 2022).
///
/// The public API is the unified Solver facade in src/api/:
///
///   Problem        -- WHAT to solve: loss + dataset + constraint geometry
///                     (a Polytope) or sparsity target s*.
///   PrivacyBudget  -- the end-to-end contract: eps (pure) or (eps, delta);
///                     THE budget type everywhere (dp/privacy.h), split and
///                     audited by the PrivacyAccountant backends of
///                     dp/accountant.h (SolverSpec::accounting picks basic /
///                     advanced / zcdp; advanced is the bit-identical
///                     default).
///   SolverSpec     -- HOW to solve: budget + schedule overrides (0 = auto
///                     from the theorem schedules via SolverSpec::Resolve)
///                     + per-iteration observer.
///   Solver         -- the estimator interface; all five paper algorithms
///                     implement it. TryFit() is the non-aborting entry
///                     point (typed Status taxonomy in util/status.h);
///                     Fit() the legacy CHECK-on-error wrapper.
///   SolverRegistry -- WHO solves: algorithms constructible by name
///                     (Find()/TryCreate() for the non-aborting path).
///   FitResult      -- iterate + PrivacyLedger audit + resolved schedule +
///                     risk trace + timing.
///   Engine         -- concurrent fit-job service (api/engine.h): Submit
///                     FitJobs, get JobHandles; cancellation, deadlines,
///                     EngineStats; results bit-identical to sequential
///                     TryFit at fixed seeds. With a BudgetManager
///                     (api/budget_manager.h) it enforces shared
///                     named-tenant budgets: over-budget submissions are
///                     rejected as kBudgetExhausted before any work runs.
///
/// Registered solver names:
///   "alg1_dp_fw"          -- Alg.1, heavy-tailed DP Frank-Wolfe (eps-DP)
///   "alg2_private_lasso"  -- Alg.2, shrunken-data private LASSO
///   "alg3_sparse_linreg"  -- Alg.3, truncated DP-IHT for sparse linreg
///   "alg4_peeling"        -- Alg.4, private top-s selection primitive
///   "alg5_sparse_opt"     -- Alg.5, robust-gradient DP-IHT (general loss)
///   "baseline_robust_gd"  -- [WXDX20]-style poly(d) Gaussian baseline
///
/// The free functions RunHtDpFw / RunHtPrivateLasso / RunHtSparseLinReg /
/// RunHtSparseOpt / MinimizeDpRobustGd remain as thin back-compat wrappers
/// over the facade and produce bit-identical results under a fixed seed;
/// new code should use the registry (see README.md for a migration table).
/// One deliberate behavior change rides along: a degenerate auto-schedule
/// configuration (n * epsilon < 1) now aborts with a diagnostic instead of
/// silently clamping T to 1 and returning a noise-dominated result. Pin
/// `iterations`/`scale` explicitly to opt back into tiny-budget runs.

#include "api/api.h"
#include "core/dp_robust_gd.h"
#include "core/ht_dp_fw.h"
#include "core/ht_private_lasso.h"
#include "core/ht_sparse_linreg.h"
#include "core/ht_sparse_opt.h"
#include "core/hyperparams.h"
#include "core/minimax.h"
#include "core/peeling.h"
#include "core/robust_gradient.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/real_world_sim.h"
#include "data/synthetic.h"
#include "dp/accountant.h"
#include "dp/exponential_mechanism.h"
#include "dp/gaussian_mechanism.h"
#include "dp/laplace_mechanism.h"
#include "dp/privacy.h"
#include "dp/privacy_ledger.h"
#include "linalg/matrix.h"
#include "linalg/projections.h"
#include "linalg/sparse_ops.h"
#include "linalg/spectrum.h"
#include "linalg/vector_ops.h"
#include "losses/biweight_loss.h"
#include "losses/huber_loss.h"
#include "losses/logistic_loss.h"
#include "losses/loss.h"
#include "losses/mean_loss.h"
#include "losses/squared_loss.h"
#include "optim/dp_fw_regular.h"
#include "optim/dp_sgd.h"
#include "optim/frank_wolfe.h"
#include "optim/iht.h"
#include "optim/pgd.h"
#include "optim/polytope.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "robust/catoni.h"
#include "robust/median_of_means.h"
#include "robust/robust_mean.h"
#include "robust/shrinkage.h"
#include "robust/trimmed_mean.h"
#include "stats/metrics.h"
#include "stats/moments.h"
#include "stats/summary.h"

#endif  // HTDP_CORE_HTDP_H_
