#ifndef HTDP_CORE_HTDP_H_
#define HTDP_CORE_HTDP_H_

/// Umbrella header for the htdp library: high-dimensional differentially
/// private stochastic optimization with heavy-tailed data (Hu, Ni, Xiao,
/// Wang; PODS 2022).
///
/// Core algorithms:
///   RunHtDpFw          -- Algorithm 1, heavy-tailed DP Frank-Wolfe (eps-DP)
///   RunHtPrivateLasso  -- Algorithm 2, shrunken-data private LASSO
///   RunHtSparseLinReg  -- Algorithm 3, truncated DP-IHT for sparse linreg
///   Peel               -- Algorithm 4, private top-s selection
///   RunHtSparseOpt     -- Algorithm 5, robust-gradient DP-IHT (general loss)

#include "core/dp_robust_gd.h"
#include "core/ht_dp_fw.h"
#include "core/ht_private_lasso.h"
#include "core/ht_sparse_linreg.h"
#include "core/ht_sparse_opt.h"
#include "core/hyperparams.h"
#include "core/minimax.h"
#include "core/peeling.h"
#include "core/robust_gradient.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/real_world_sim.h"
#include "data/synthetic.h"
#include "dp/exponential_mechanism.h"
#include "dp/gaussian_mechanism.h"
#include "dp/laplace_mechanism.h"
#include "dp/privacy.h"
#include "dp/privacy_ledger.h"
#include "linalg/matrix.h"
#include "linalg/projections.h"
#include "linalg/sparse_ops.h"
#include "linalg/spectrum.h"
#include "linalg/vector_ops.h"
#include "losses/biweight_loss.h"
#include "losses/huber_loss.h"
#include "losses/logistic_loss.h"
#include "losses/loss.h"
#include "losses/mean_loss.h"
#include "losses/squared_loss.h"
#include "optim/dp_fw_regular.h"
#include "optim/dp_sgd.h"
#include "optim/frank_wolfe.h"
#include "optim/iht.h"
#include "optim/pgd.h"
#include "optim/polytope.h"
#include "rng/distributions.h"
#include "rng/rng.h"
#include "robust/catoni.h"
#include "robust/median_of_means.h"
#include "robust/robust_mean.h"
#include "robust/shrinkage.h"
#include "robust/trimmed_mean.h"
#include "stats/metrics.h"
#include "stats/moments.h"
#include "stats/summary.h"

#endif  // HTDP_CORE_HTDP_H_
