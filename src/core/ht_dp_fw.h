#ifndef HTDP_CORE_HT_DP_FW_H_
#define HTDP_CORE_HT_DP_FW_H_

#include <vector>

#include "data/dataset.h"
#include "dp/privacy_ledger.h"
#include "linalg/vector_ops.h"
#include "losses/loss.h"
#include "optim/polytope.h"
#include "rng/rng.h"

namespace htdp {

/// Algorithm 1: Heavy-tailed DP-FW (epsilon-DP).
///
/// Splits the data into T disjoint folds; each iteration computes the
/// coordinate-wise Catoni robust gradient g~ on one fold, runs the
/// exponential mechanism over the polytope's vertices with score
/// u(D_t, v) = -<v, g~> and sensitivity ||v||_1 * 4 sqrt(2) s / (3 m), and
/// takes the Frank-Wolfe step w_t = (1 - eta_{t-1}) w_{t-1} +
/// eta_{t-1} w~_{t-1}. Disjoint folds compose in parallel, so the whole run
/// is epsilon-DP (Theorem 1). Under Assumption 1 the excess population risk
/// is O~(||W||_1 (alpha tau log(n |V| d / zeta))^(1/3) / (n eps)^(1/3))
/// (Theorem 2); with the fixed-step schedule it also covers the non-convex
/// robust regression of Theorem 3.
struct HtDpFwOptions {
  double epsilon = 1.0;
  /// T; 0 = auto, floor((n epsilon)^(1/3)) per Section 6.2.
  int iterations = 0;
  /// Truncation scale s; 0 = auto from Theorem 2 using `tau`.
  double scale = 0.0;
  /// Smoothing precision beta = O(1).
  double beta = 1.0;
  /// Coordinate-wise second-moment bound on the gradient (Assumption 1).
  /// The paper assumes tau is known; estimate it offline with
  /// EstimateGradientSecondMoment if needed.
  double tau = 1.0;
  /// Failure probability driving the auto schedule's log terms.
  double zeta = 0.1;
  /// true: eta_t = 2/(t+2) (Theorem 2); false: fixed step (Theorem 3).
  bool diminishing_step = true;
  /// Fixed step when diminishing_step is false; 0 = 1/sqrt(T).
  double fixed_step = 0.0;
  /// When true, records the empirical risk after every iteration in
  /// `risk_trace` (costs one pass over the data per iteration).
  bool record_risk_trace = false;
};

struct HtDpFwResult {
  Vector w;
  PrivacyLedger ledger;
  int iterations = 0;
  double scale_used = 0.0;
  std::vector<double> risk_trace;
};

/// Runs Algorithm 1. `w0` must lie in `polytope`. The dataset must outlive
/// the call; it is never modified.
HtDpFwResult RunHtDpFw(const Loss& loss, const Dataset& data,
                       const Polytope& polytope, const Vector& w0,
                       const HtDpFwOptions& options, Rng& rng);

}  // namespace htdp

#endif  // HTDP_CORE_HT_DP_FW_H_
