// Back-compat wrapper: RunHtPrivateLasso is now a thin adapter over the
// alg2_private_lasso Solver in src/api/, which holds the algorithm body.

#include "core/ht_private_lasso.h"

#include <memory>
#include <utility>

#include "api/api.h"
#include "util/check.h"

namespace htdp {

HtPrivateLassoResult RunHtPrivateLasso(const Dataset& data,
                                       const Polytope& polytope,
                                       const Vector& w0,
                                       const HtPrivateLassoOptions& options,
                                       Rng& rng) {
  static const std::unique_ptr<const Solver> solver =
      CreateAlg2PrivateLassoSolver();

  HTDP_CHECK_EQ(w0.size(), data.dim());
  Problem problem;
  problem.data = &data;
  problem.constraint = &polytope;
  problem.w0 = w0;

  SolverSpec spec;
  spec.budget = PrivacyBudget::Approx(options.epsilon, options.delta);
  spec.iterations = options.iterations;
  spec.shrinkage = options.shrinkage;
  spec.record_risk_trace = options.record_risk_trace;

  FitResult fit = solver->Fit(problem, spec, rng);

  HtPrivateLassoResult result;
  result.w = std::move(fit.w);
  result.ledger = std::move(fit.ledger);
  result.iterations = fit.iterations;
  result.shrinkage_used = fit.shrinkage_used;
  result.risk_trace = std::move(fit.risk_trace);
  return result;
}

}  // namespace htdp
