#include "core/ht_private_lasso.h"

#include <cstddef>

#include "core/hyperparams.h"
#include "dp/exponential_mechanism.h"
#include "dp/privacy.h"
#include "losses/squared_loss.h"
#include "robust/shrinkage.h"
#include "util/check.h"

namespace htdp {

HtPrivateLassoResult RunHtPrivateLasso(const Dataset& data,
                                       const Polytope& polytope,
                                       const Vector& w0,
                                       const HtPrivateLassoOptions& options,
                                       Rng& rng) {
  data.Validate();
  HTDP_CHECK_EQ(w0.size(), polytope.dim());
  HTDP_CHECK_EQ(data.dim(), polytope.dim());
  PrivacyParams{options.epsilon, options.delta}.Validate();
  HTDP_CHECK_GT(options.delta, 0.0);

  int iterations = options.iterations;
  double shrinkage = options.shrinkage;
  if (iterations <= 0 || shrinkage <= 0.0) {
    const Alg2Schedule schedule =
        SolveAlg2Schedule(data.size(), options.epsilon);
    if (iterations <= 0) iterations = schedule.iterations;
    if (shrinkage <= 0.0) shrinkage = schedule.shrinkage;
  }

  // Step 2: entrywise shrinkage of the whole dataset.
  Dataset shrunken = data;
  ShrinkInPlace(shrinkage, shrunken.x);
  ShrinkInPlace(shrinkage, shrunken.y);

  const std::size_t n = data.size();
  const double k2 = shrinkage * shrinkage;
  const double vertex_norm = polytope.MaxVertexL1Norm();
  // |2 x~_j (<x~, w> - y~)| <= 2 K^2 (V + 1); replacing one sample moves the
  // average by twice that over n, and the score by ||v||_1 times that.
  const double sensitivity =
      4.0 * k2 * vertex_norm * (vertex_norm + 1.0) / static_cast<double>(n);
  const double step_epsilon = AdvancedCompositionStepEpsilon(
      options.epsilon, options.delta, iterations);
  const ExponentialMechanism mechanism(sensitivity, step_epsilon);
  const double step_delta =
      AdvancedCompositionStepDelta(options.delta, iterations);

  const SquaredLoss loss;
  const DatasetView shrunken_view = FullView(shrunken);

  HtPrivateLassoResult result;
  result.w = w0;
  result.iterations = iterations;
  result.shrinkage_used = shrinkage;

  Vector grad;
  Vector scores;
  for (int t = 1; t <= iterations; ++t) {
    // g~ = (2/n) sum_i x~_i (<x~_i, w> - y~_i), the exact gradient of the
    // squared loss on the shrunken data.
    EmpiricalGradient(loss, shrunken_view, result.w, grad);
    polytope.VertexInnerProducts(grad, scores);
    for (double& value : scores) value = -value;
    const std::size_t pick = mechanism.SelectGumbel(scores, rng);
    result.ledger.Record({"exponential", step_epsilon, step_delta,
                          sensitivity, /*fold=*/-1});

    const double eta = 2.0 / (static_cast<double>(t) + 2.0);
    polytope.ApplyConvexStep(pick, eta, result.w);

    if (options.record_risk_trace) {
      result.risk_trace.push_back(EmpiricalRisk(loss, data, result.w));
    }
  }
  return result;
}

}  // namespace htdp
